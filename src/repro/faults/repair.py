"""Re-replication of records a node missed while it was down.

When a node rejoins (its engine crash-recovered from flash), two kinds
of damage remain:

* **missed writes** — puts and deletes the group routed around while the
  node was down, recorded per node in
  :attr:`~repro.mint.group.NodeGroup.repair_backlog`;
* **lost tail** — records the node had accepted but not flushed before
  the power failure, which crash recovery cannot resurrect.

:class:`ReplicaRepairer` replays the backlog in arrival order, then
audits every ``(key, version)`` the cluster still references against the
node's replica responsibility and copies anything missing from a healthy
peer — restoring the group to ``replica_count`` live copies.

Copies preserve the stored *representation*: a value-less deduplicated
record is re-created value-less (via :meth:`~repro.qindb.engine.QinDB.peek`),
never materialised through the GET traceback — so a repaired fleet stays
byte-identical to one that never faulted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.bifrost.signature import signature
from repro.errors import ConfigError, KeyNotFoundError, NodeDownError
from repro.mint.cluster import MintCluster
from repro.mint.group import NodeGroup
from repro.mint.integrity import leaf_checksum, seal_summary
from repro.mint.node import StorageNode


@dataclass
class AuditResult:
    """What one integrity audit (tiered or naive) found and did."""

    slices_audited: int = 0
    records_sampled: int = 0
    #: full cryptographic hashes computed — THE tiered-vs-naive number
    full_hashes: int = 0
    leaf_mismatches: int = 0
    path_failures: int = 0
    seal_failures: int = 0
    signature_mismatches: int = 0
    full_sweeps: int = 0
    divergent_records: int = 0
    records_repaired: int = 0
    #: records a peek could not find (left to the repair sweep)
    missing_records: int = 0

    @property
    def clean(self) -> bool:
        return (
            self.leaf_mismatches == 0
            and self.path_failures == 0
            and self.seal_failures == 0
            and self.signature_mismatches == 0
        )

    def merge(self, other: "AuditResult") -> None:
        self.slices_audited += other.slices_audited
        self.records_sampled += other.records_sampled
        self.full_hashes += other.full_hashes
        self.leaf_mismatches += other.leaf_mismatches
        self.path_failures += other.path_failures
        self.seal_failures += other.seal_failures
        self.signature_mismatches += other.signature_mismatches
        self.full_sweeps += other.full_sweeps
        self.divergent_records += other.divergent_records
        self.records_repaired += other.records_repaired
        self.missing_records += other.missing_records


@dataclass
class RepairResult:
    """What one node's repair run did."""

    keys_copied: int = 0
    bytes_copied: int = 0
    deletes_applied: int = 0
    #: copies re-fetched from another data center's cluster because no
    #: group peer survived with the record (correlated tail loss)
    remote_copies: int = 0
    #: total device-clock seconds the run consumed across the group
    #: (peer reads and the rejoining node's writes)
    device_seconds: float = 0.0

    def merge(self, other: "RepairResult") -> None:
        self.keys_copied += other.keys_copied
        self.bytes_copied += other.bytes_copied
        self.deletes_applied += other.deletes_applied
        self.remote_copies += other.remote_copies
        self.device_seconds += other.device_seconds


class ReplicaRepairer:
    """Copies missed ``(key, version)`` records from healthy peers."""

    def __init__(self, duration_hist=None) -> None:
        #: optional :class:`~repro.obs.hist.LogHistogram` accumulating
        #: per-run repair device-seconds — mergeable across repairers,
        #: so a fleet-wide repair-duration distribution costs nothing
        self.duration_hist = duration_hist

    def repair_node(
        self,
        cluster: MintCluster,
        group: NodeGroup,
        node: StorageNode,
        fleet=None,
    ) -> RepairResult:
        """Bring one rejoined node back to full replication.

        Backlog first (it carries the deletes an audit cannot see), then
        the audit sweep for the lost unflushed tail.  Versions audit in
        ascending order so a dedup chain's base record lands on the node
        before the value-less records that point at it.

        ``fleet`` (a DC-name → :class:`MintCluster` map) arms the last
        line of defence: when a whole group crashed at once, a record can
        be gone from *every* local replica's unflushed tail — the only
        surviving copy is another data center's, so repair re-fetches it
        cross-region (the slice already travelled there over Bifrost).
        """
        if not node.is_up:
            raise NodeDownError(
                f"cannot repair {node.name}: node is still down"
            )
        result = RepairResult()
        clocks_before = {
            peer.name: peer.engine.device.now for peer in group.nodes
        }
        for op, key, version in group.repair_backlog.pop(node.name, []):
            if op == "delete":
                try:
                    node.delete(key, version)
                    result.deletes_applied += 1
                except KeyNotFoundError:
                    pass  # the node never had the record; nothing to drop
            else:
                self._copy_if_missing(
                    group, node, key, version, result, cluster, fleet
                )
        self._replay_parked(group, result)
        for version in sorted(cluster.version_keys):
            seen = set()
            for key in cluster.version_keys[version]:
                if key in seen or cluster.group_for(key) is not group:
                    continue
                seen.add(key)
                if any(
                    replica is node for replica in group.replicas_for(key)
                ):
                    self._copy_if_missing(
                        group, node, key, version, result, cluster, fleet
                    )
        result.device_seconds = sum(
            peer.engine.device.now - clocks_before[peer.name]
            for peer in group.nodes
        )
        if self.duration_hist is not None:
            self.duration_hist.add(result.device_seconds)
        return result

    # ------------------------------------------------------------------
    def _replay_parked(self, group: NodeGroup, result: RepairResult) -> None:
        """Land writes parked while their whole replica set was down.

        An entry lands on every live replica that lacks it; entries whose
        replicas are all still down stay parked for a later repair run.
        """
        still_parked: List[tuple] = []
        for key, version, value in group.pending_writes:
            landed = False
            for replica in group.replicas_for(key):
                if not replica.is_up:
                    continue
                landed = True
                if not replica.engine.exists(key, version):
                    replica.put(key, version, value)
                    result.keys_copied += 1
                    result.bytes_copied += len(key) + len(value or b"")
            if not landed:
                still_parked.append((key, version, value))
        group.pending_writes = still_parked

    def _copy_if_missing(
        self,
        group: NodeGroup,
        node: StorageNode,
        key: bytes,
        version: int,
        result: RepairResult,
        cluster: Optional[MintCluster] = None,
        fleet=None,
    ) -> None:
        if node.engine.exists(key, version):
            return
        record = self._read_from_peers(group, node, key, version)
        remote = False
        if record is None and fleet is not None and cluster is not None:
            # The version is still referenced locally but no group peer
            # has the record (correlated tail loss): only re-fetch
            # cross-region for keys the cluster actually acknowledged —
            # a version dropped mid-outage must stay dropped.
            if version in cluster.version_keys:
                record = self._read_from_fleet(cluster, fleet, key, version)
                remote = record is not None
        if record is None:
            # No copy survives anywhere (or the version was dropped while
            # the node was down — never resurrect it).
            return
        value, deduplicated = record
        node.put(key, version, None if deduplicated else value)
        result.keys_copied += 1
        result.bytes_copied += len(key) + len(value or b"")
        if remote:
            result.remote_copies += 1

    def copy_record(
        self,
        source_group: NodeGroup,
        target: StorageNode,
        key: bytes,
        version: int,
        result: Optional[RepairResult] = None,
    ) -> bool:
        """Copy one stored record onto ``target``, representation intact.

        The elastic migrator's building block, sharing the repairer's
        peek-based machinery: a value-less deduplicated record is
        re-created value-less, so migrated data stays byte-identical to
        data that never moved.  Idempotent — a record the target already
        holds is left untouched.  Reads from *any* live node of the
        source group (mid-transition, placement there may be shifting
        under the copy).  Returns ``False`` only if no live source node
        held the record.
        """
        if target.engine.exists(key, version):
            return True
        for peer in source_group.nodes:
            if peer is target or not peer.is_up:
                continue
            record = self._peek(peer, key, version)
            if record is None:
                continue
            value, deduplicated = record
            target.put(key, version, None if deduplicated else value)
            if result is not None:
                result.keys_copied += 1
                result.bytes_copied += len(key) + len(value or b"")
            return True
        return False

    def _read_from_fleet(
        self, cluster: MintCluster, fleet, key: bytes, version: int
    ) -> Optional[Tuple[Optional[bytes], bool]]:
        """The stored record from any other data center holding it."""
        for other in fleet.values():
            if other is cluster:
                continue
            remote_group = other.group_for(key)
            for peer in remote_group.replicas_for(key):
                if not peer.is_up:
                    continue
                record = self._peek(peer, key, version)
                if record is not None:
                    return record
        return None

    def _read_from_peers(
        self,
        group: NodeGroup,
        node: StorageNode,
        key: bytes,
        version: int,
    ) -> Optional[Tuple[Optional[bytes], bool]]:
        """The stored record from the first healthy peer that has it."""
        for peer in group.replicas_for(key):
            if peer is node or not peer.is_up:
                continue
            record = self._peek(peer, key, version)
            if record is not None:
                return record
        return None

    @staticmethod
    def _peek(peer: StorageNode, key: bytes, version: int):
        engine = peer.engine
        peek = getattr(engine, "peek", None)
        if peek is not None:
            return peek(key, version)
        # Engines without a raw-record read (the LSM baseline): fall back
        # to the user read path.  The dedup flag is unrecoverable there,
        # so the copy materialises as a full value.
        try:
            if not engine.exists(key, version):
                return None
            return (engine.get(key, version), False)
        except KeyNotFoundError:
            return None

    # ------------------------------------------------------------------
    def audit_node(
        self,
        cluster: MintCluster,
        node: StorageNode,
        naive: bool = False,
    ) -> AuditResult:
        """Verify one node's stored records against the integrity index.

        **Tiered** (default): per slice, sample ``ceil(log2(n)) + 1`` of
        the node's records, recompute their CRC32 leaves from the stored
        bytes, verify each leaf's Merkle path up to the BLAKE2b-sealed
        root, and full-hash only the sampled values against their
        build-time signatures — so the expensive cryptographic hashing
        is O(log n) per slice (``integrity.*.audit_hashes``).  Any
        divergence triggers a full leaf sweep of that slice to locate
        every damaged record, each repaired by overwriting from a peer
        whose copy's leaf checksum matches the sealed tree.

        **Naive** (``naive=True``): the pre-tiered baseline — full-hash
        every stored record of every slice.  Same detection power on a
        sweep, O(n) hashes; the bandwidth bench reports both counts.
        """
        if not node.is_up:
            raise NodeDownError(f"cannot audit {node.name}: node is down")
        integrity = getattr(cluster, "integrity", None)
        if integrity is None:
            raise ConfigError(
                f"cluster {cluster.name} has integrity_enabled=False; "
                "nothing to audit against"
            )
        result = AuditResult()
        counters = integrity.counters
        for summary in integrity.all_summaries():
            indices = [
                index
                for index, record in enumerate(summary.records)
                if any(
                    replica is node
                    for replica in cluster.group_for(record[0]).replicas_for(
                        record[0]
                    )
                )
            ]
            if not indices:
                continue
            result.slices_audited += 1
            counters.audited_slices += 1
            # One BLAKE2b re-seal check per audited slice: the recorded
            # tree itself must still match its tamper-evident seal.
            counters.audit_hashes += 1
            result.full_hashes += 1
            if seal_summary(summary.slice_id, summary.root) != summary.seal:
                result.seal_failures += 1
                counters.divergent_records += 1
                continue
            if naive:
                sampled = indices
            else:
                count = integrity.sample_size(len(indices))
                step = max(1, len(indices) // count)
                sampled = indices[::step][:count]
            diverged = False
            for index in sampled:
                key, version, _dedup, build_sig = summary.records[index]
                record = self._peek(node, key, version)
                result.records_sampled += 1
                counters.audited_records += 1
                if record is None:
                    result.missing_records += 1
                    continue
                value, stored_dedup = record
                stored_value = None if stored_dedup else value
                leaf = leaf_checksum(key, version, stored_value)
                counters.audit_leaf_checks += 1
                if leaf != summary.levels[0][index]:
                    result.leaf_mismatches += 1
                    diverged = True
                    continue
                if not summary.verify_path(index, leaf):
                    result.path_failures += 1
                    diverged = True
                    continue
                if stored_value is not None and build_sig is not None:
                    counters.audit_hashes += 1
                    result.full_hashes += 1
                    if signature(stored_value) != build_sig:
                        result.signature_mismatches += 1
                        diverged = True
            if diverged:
                self._sweep_slice(
                    cluster, node, summary, indices, result, counters
                )
        return result

    def _sweep_slice(
        self, cluster, node, summary, indices, result, counters
    ) -> None:
        """Divergence response: leaf-check every record of the slice on
        this node and repair the damaged ones from checksum-verified
        peers."""
        counters.audit_full_sweeps += 1
        result.full_sweeps += 1
        for index in indices:
            key, version, _dedup, _sig = summary.records[index]
            expected = summary.levels[0][index]
            record = self._peek(node, key, version)
            counters.audit_leaf_checks += 1
            if record is not None:
                value, stored_dedup = record
                stored_value = None if stored_dedup else value
                if leaf_checksum(key, version, stored_value) == expected:
                    continue
            result.divergent_records += 1
            counters.divergent_records += 1
            group = cluster.group_for(key)
            for peer in group.replicas_for(key):
                if peer is node or not peer.is_up:
                    continue
                peer_record = self._peek(peer, key, version)
                if peer_record is None:
                    continue
                peer_value, peer_dedup = peer_record
                peer_stored = None if peer_dedup else peer_value
                counters.audit_leaf_checks += 1
                if leaf_checksum(key, version, peer_stored) != expected:
                    continue  # this peer's copy is damaged too
                node.put(key, version, peer_stored)
                result.records_repaired += 1
                counters.records_repaired += 1
                break

    def audit_cluster(
        self, cluster: MintCluster, naive: bool = False
    ) -> AuditResult:
        """Audit every live node of a cluster; merged result."""
        result = AuditResult()
        for group in cluster.groups:
            for node in group.nodes:
                if node.is_up:
                    result.merge(self.audit_node(cluster, node, naive=naive))
        return result

    # ------------------------------------------------------------------
    def repair_group(
        self, cluster: MintCluster, group: NodeGroup, fleet=None
    ) -> List[Tuple[StorageNode, RepairResult]]:
        """Repair every live node of a group (post-outage recovery)."""
        return [
            (node, self.repair_node(cluster, group, node, fleet=fleet))
            for node in group.nodes
            if node.is_up
        ]
