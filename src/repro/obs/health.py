"""Fleet health scoring and multi-window SLO burn-rate alerting.

Two rule kinds run against the :class:`~repro.obs.timeseries.TimeSeriesRecorder`
stream, evaluated synchronously after every sample (detection latency is
therefore bounded by the sampling interval):

* :class:`GaugeRule` — threshold alerts on live gauges, scanned by
  dotted-name pattern (``mint.*.up`` below 0.5 fires ``node_down`` per
  node; ``bifrost.link.*.partitioned`` above 0.5 fires
  ``link_partition`` per link).
* :class:`BurnRateRule` — the SRE multi-window burn-rate pattern: the
  error-budget burn (bad/total over the window, divided by the budget)
  must exceed its threshold on **both** a fast and a slow window to
  fire.  The fast window catches the event quickly; the slow window
  suppresses one-sample blips.  With ``total=None`` the rule burns
  against an absolute events-per-second budget instead of a ratio.

Alerts are edge-triggered :class:`AlertEvent` records with simulated
timestamps: one event per bad transition, resolved in place when the
condition clears.  When a tracer is attached, every fire and resolve
also lands as a Chrome-trace instant so detections line up against
injected faults in the trace viewer.

:func:`join_detections` closes the loop: it matches alert events against
a fault injector's ground-truth timeline and reports per-fault MTTD
(injection to first matching alert) and MTTR (injection to repaired).
:func:`health_scores` folds one collected sample into per-node /
per-group / per-link scores and a fleet-wide minimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError


@dataclass
class AlertEvent:
    """One edge-triggered alert: fired at ``at_s``, maybe resolved."""

    at_s: float
    name: str        #: rule name, e.g. ``node_down`` / ``slo_burn``
    target: str      #: what fired, e.g. ``north-dc1.g0.n0``
    severity: str
    value: float     #: observed gauge value or burn factor at fire time
    threshold: float
    window_s: float = 0.0
    resolved_at_s: Optional[float] = None

    @property
    def active(self) -> bool:
        return self.resolved_at_s is None

    @property
    def duration_s(self) -> float:
        return (
            0.0 if self.resolved_at_s is None
            else self.resolved_at_s - self.at_s
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "at_s": self.at_s,
            "name": self.name,
            "target": self.target,
            "severity": self.severity,
            "value": self.value,
            "threshold": self.threshold,
            "window_s": self.window_s,
            "resolved_at_s": self.resolved_at_s,
        }


@dataclass(frozen=True)
class GaugeRule:
    """Fire while a gauge sits on the wrong side of a threshold."""

    name: str
    #: dotted-name prefix restricting the scan (e.g. ``mint.``)
    prefix: str
    #: metric suffix selecting the family (e.g. ``.up``)
    suffix: str
    #: fire while value < this (e.g. liveness gauges) ...
    fire_below: Optional[float] = None
    #: ... or while value > this (e.g. partitioned flags)
    fire_above: Optional[float] = None
    severity: str = "page"

    def __post_init__(self) -> None:
        if (self.fire_below is None) == (self.fire_above is None):
            raise ConfigError(
                f"gauge rule {self.name!r} needs exactly one of "
                "fire_below / fire_above"
            )

    def bad(self, value: float) -> bool:
        if self.fire_below is not None:
            return value < self.fire_below
        return value > self.fire_above

    @property
    def threshold(self) -> float:
        return (
            self.fire_below if self.fire_below is not None
            else self.fire_above
        )

    def target_of(self, metric: str) -> str:
        return metric[len(self.prefix):len(metric) - len(self.suffix)]


@dataclass(frozen=True)
class BurnRateRule:
    """SRE multi-window burn-rate alert over two counters.

    Burn = (bad delta / total delta) / budget per window when ``total``
    is set (budget is the allowed bad fraction); with ``total=None``,
    burn = (bad delta / window seconds) / budget (budget is the allowed
    absolute rate in events per second).  Fires when burn exceeds the
    threshold on the fast **and** the slow window; resolves when the
    fast window drops back under.
    """

    name: str
    bad: str
    total: Optional[str] = None
    budget: float = 0.01
    fast_window_s: float = 1.0
    slow_window_s: float = 5.0
    fast_burn: float = 14.0
    slow_burn: float = 6.0
    severity: str = "page"

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ConfigError(
                f"burn rule {self.name!r} needs a positive budget"
            )
        if self.fast_window_s <= 0 or self.slow_window_s < self.fast_window_s:
            raise ConfigError(
                f"burn rule {self.name!r} windows must satisfy "
                "0 < fast <= slow"
            )


def default_gauge_rules() -> Tuple[GaugeRule, ...]:
    """Liveness and reachability over the standard metric families."""
    return (
        GaugeRule(
            name="node_down", prefix="mint.", suffix=".up",
            fire_below=0.5, severity="page",
        ),
        GaugeRule(
            name="link_partition", prefix="bifrost.link.",
            suffix=".partitioned", fire_above=0.5, severity="page",
        ),
        GaugeRule(
            name="link_congested", prefix="bifrost.monitor.",
            suffix=".congested", fire_above=0.5, severity="warn",
        ),
        # Elastic rebalances surface as informational alerts so a
        # ``repro health --watch`` session shows data movement alongside
        # faults.  Fires per cluster and per group while any keys are
        # still awaiting migration; reads 0 (never fires) in fleets
        # that have no elastic activity.
        GaugeRule(
            name="rebalance_backlog", prefix="elastic.",
            suffix=".moving_keys", fire_above=0.5, severity="info",
        ),
    )


def default_burn_rules(
    fast_window_s: float = 1.0, slow_window_s: float = 5.0
) -> Tuple[BurnRateRule, ...]:
    """Availability and transport-health burn over the chaos probes."""
    return (
        # Read availability: 1% unavailable probes is the error budget;
        # an outage burns it at ~100x, tripping both windows fast.
        BurnRateRule(
            name="slo_burn",
            bad="faults.reads.unavailable",
            total="faults.reads.probes",
            budget=0.01,
            fast_window_s=fast_window_s,
            slow_window_s=slow_window_s,
            fast_burn=14.0,
            slow_burn=6.0,
            severity="page",
        ),
        # In-flight corruption: retransmissions above 0.1/s sustained on
        # both windows is a storm, not background noise.
        BurnRateRule(
            name="retransmit_storm",
            bad="faults.retransmits",
            total=None,
            budget=0.1,
            fast_window_s=fast_window_s,
            slow_window_s=slow_window_s,
            fast_burn=5.0,
            slow_burn=2.0,
            severity="warn",
        ),
    )


class HealthEngine:
    """Evaluates alert rules on every recorder sample."""

    def __init__(
        self,
        recorder,
        gauge_rules: Optional[Sequence[GaugeRule]] = None,
        burn_rules: Optional[Sequence[BurnRateRule]] = None,
        tracer=None,
        track: str = "alerts",
    ) -> None:
        self.recorder = recorder
        self.gauge_rules = tuple(
            default_gauge_rules() if gauge_rules is None else gauge_rules
        )
        self.burn_rules = tuple(
            default_burn_rules() if burn_rules is None else burn_rules
        )
        self.tracer = tracer
        self.track = track
        #: every alert ever fired, in fire order (resolved in place)
        self.alerts: List[AlertEvent] = []
        #: (rule name, target) -> currently firing alert
        self.active: Dict[Tuple[str, str], AlertEvent] = {}
        self.evaluations = 0
        recorder.subscribe(self.evaluate)

    # ------------------------------------------------------------------
    def _instant(self, name: str, at: float, **attrs) -> None:
        instant = getattr(self.tracer, "instant", None)
        if instant is not None:
            instant(name, track=self.track, at=at, **attrs)

    def _fire(
        self, at: float, name: str, target: str, severity: str,
        value: float, threshold: float, window_s: float = 0.0,
    ) -> None:
        key = (name, target)
        if key in self.active:
            return
        alert = AlertEvent(
            at_s=at, name=name, target=target, severity=severity,
            value=value, threshold=threshold, window_s=window_s,
        )
        self.active[key] = alert
        self.alerts.append(alert)
        self._instant(
            f"alert:{name}", at, target=target, severity=severity,
            value=value,
        )

    def _resolve(self, at: float, name: str, target: str) -> None:
        alert = self.active.pop((name, target), None)
        if alert is not None:
            alert.resolved_at_s = at
            self._instant(f"resolve:{name}", at, target=target)

    # ------------------------------------------------------------------
    def evaluate(self, at: float, values: Dict[str, float]) -> None:
        """One pass over every rule (the recorder's sample hook)."""
        self.evaluations += 1
        for rule in self.gauge_rules:
            for metric, value in values.items():
                if not (
                    metric.startswith(rule.prefix)
                    and metric.endswith(rule.suffix)
                ):
                    continue
                target = rule.target_of(metric)
                if rule.bad(value):
                    self._fire(
                        at, rule.name, target, rule.severity,
                        value, rule.threshold,
                    )
                else:
                    self._resolve(at, rule.name, target)
        recorder = self.recorder
        for rule in self.burn_rules:
            fast = self._burn(rule, rule.fast_window_s, at)
            slow = self._burn(rule, rule.slow_window_s, at)
            if fast > rule.fast_burn and slow > rule.slow_burn:
                self._fire(
                    at, rule.name, rule.bad, rule.severity,
                    fast, rule.fast_burn, window_s=rule.fast_window_s,
                )
            elif fast <= rule.fast_burn:
                self._resolve(at, rule.name, rule.bad)

    def _burn(self, rule: BurnRateRule, window_s: float, at: float) -> float:
        if rule.total is None:
            rate = self.recorder.window_rate(rule.bad, window_s, at=at)
            return rate / rule.budget
        bad = self.recorder.window_delta(rule.bad, window_s, at=at)
        total = self.recorder.window_delta(rule.total, window_s, at=at)
        if total <= 0:
            return 0.0
        return (bad / total) / rule.budget

    # ------------------------------------------------------------------
    def active_alerts(self) -> List[AlertEvent]:
        return [a for a in self.alerts if a.active]

    def to_dicts(self) -> List[Dict[str, object]]:
        return [alert.to_dict() for alert in self.alerts]


# ----------------------------------------------------------------------
# Health scoring
# ----------------------------------------------------------------------


def health_scores(values: Dict[str, float]) -> Dict[str, object]:
    """Fold one collected sample into node/group/link health scores.

    Scores are in ``[0, 1]``: a node is its ``up`` gauge; a group is its
    live-replica fraction minus a 0.2 penalty each for parked writes and
    a non-empty repair backlog (durability debt that a healthy count
    alone hides); a link is ``1 - partitioned``.  ``fleet_score`` is the
    *minimum* across groups and links — health is availability-limited
    by the worst component, not averaged away.
    """
    nodes: Dict[str, float] = {}
    groups: Dict[str, Dict[str, float]] = {}
    links: Dict[str, float] = {}
    elastic_groups: Dict[str, Dict[str, float]] = {}
    for name, value in values.items():
        if name.startswith("mint.") and name.endswith(".up"):
            nodes[name[len("mint."):-len(".up")]] = 1.0 if value else 0.0
        elif name.startswith("bifrost.link.") and name.endswith(
            ".partitioned"
        ):
            links[name[len("bifrost.link."):-len(".partitioned")]] = (
                0.0 if value else 1.0
            )
        elif ".group." in name and name.startswith("mint."):
            prefix, _sep, suffix = name.rpartition(".group.")
            groups.setdefault(prefix[len("mint."):], {})[suffix] = value
        elif name.startswith("elastic.") and not name.startswith(
            "elastic.load."
        ):
            parts = name[len("elastic."):].split(".")
            if len(parts) == 3 and parts[1].startswith("g"):
                target = f"{parts[0]}.{parts[1]}"
                elastic_groups.setdefault(target, {})[parts[2]] = value
    group_scores: Dict[str, float] = {}
    for group, gauges in sorted(groups.items()):
        members = gauges.get("nodes", 0.0)
        healthy = gauges.get("healthy", members)
        score = healthy / members if members else 1.0
        if gauges.get("parked_writes", 0.0) > 0:
            score -= 0.2
        if gauges.get("repair_backlog", 0.0) > 0:
            score -= 0.2
        group_scores[group] = max(0.0, min(1.0, score))
    floor_candidates = list(group_scores.values()) + list(links.values())
    moving_keys = sum(
        gauges.get("moving_keys", 0.0)
        for gauges in elastic_groups.values()
    )
    rebalancing = moving_keys > 0 or any(
        gauges.get("in_transition", 0.0) > 0
        for gauges in elastic_groups.values()
    )
    return {
        "nodes": dict(sorted(nodes.items())),
        "groups": group_scores,
        "links": dict(sorted(links.items())),
        # Rebalance state rides along (informational — planned data
        # movement is not unhealthiness, so it never lowers the floor).
        "elastic": {
            "groups": dict(sorted(elastic_groups.items())),
            "moving_keys": moving_keys,
            "rebalancing": rebalancing,
        },
        "fleet_score": min(floor_candidates) if floor_candidates else 1.0,
    }


# ----------------------------------------------------------------------
# Detection-latency accounting (MTTD / MTTR)
# ----------------------------------------------------------------------

#: fault kinds a healthy alerting setup must always detect
REQUIRED_DETECTION_KINDS = ("crash", "outage", "partition")

#: fault kind -> alert names that count as detecting it
_KIND_ALERTS = {
    "crash": ("node_down",),
    "outage": ("node_down",),
    "partition": ("link_partition", "slo_burn"),
    "degrade": ("link_congested", "slo_burn"),
    "corrupt": ("retransmit_storm",),
}


def _alert_matches(record: Dict[str, object], alert: AlertEvent) -> bool:
    kind = record["kind"]
    if alert.name not in _KIND_ALERTS.get(kind, ()):
        return False
    target = str(record["target"]).replace("/", ".")
    if kind == "crash":
        return alert.target == target
    if kind == "outage":
        return alert.target.startswith(target + ".")
    if kind in ("partition", "degrade"):
        # link targets may carry a stream segment (src-dst.slices)
        return alert.name == "slo_burn" or alert.target.startswith(target)
    return True  # corrupt: the storm alert is fleet-wide


def join_detections(
    timeline: Sequence[Dict[str, object]],
    alerts: Sequence[AlertEvent],
    grace_s: float = 0.0,
) -> Dict[str, object]:
    """Match alert events against injected-fault ground truth.

    For every fault the injector actually applied, find the earliest
    matching alert fired at or after injection (and no later than
    ``healed_at + grace_s`` when the heal time is known — an alert for a
    later fault on the same target must not claim this one).  MTTD is
    that alert's fire time minus injection; MTTR is repair completion
    (re-protection for node faults, heal for network faults) minus
    injection.
    """
    ordered = sorted(alerts, key=lambda a: a.at_s)
    rows: List[Dict[str, object]] = []
    detected_latencies: List[float] = []
    repair_latencies: List[float] = []
    undetected_required = 0
    for record in timeline:
        injected = record.get("injected_at")
        if injected is None:
            continue  # scheduled but never applied (run ended first)
        healed = record.get("healed_at")
        deadline = (
            float("inf") if healed is None else healed + grace_s
        )
        match: Optional[AlertEvent] = None
        for alert in ordered:
            if alert.at_s < injected or alert.at_s > deadline:
                continue
            if _alert_matches(record, alert):
                match = alert
                break
        repaired = record.get("repaired_at")
        if repaired is None:
            repaired = healed
        mttd = None if match is None else match.at_s - injected
        mttr = None if repaired is None else repaired - injected
        if mttd is not None:
            detected_latencies.append(mttd)
        if mttr is not None:
            repair_latencies.append(mttr)
        required = record["kind"] in REQUIRED_DETECTION_KINDS
        if required and mttd is None:
            undetected_required += 1
        rows.append(
            {
                "index": record.get("index"),
                "kind": record["kind"],
                "target": record["target"],
                "injected_at_s": injected,
                "healed_at_s": healed,
                "repaired_at_s": record.get("repaired_at"),
                "detected_by": None if match is None else match.name,
                "detected_at_s": None if match is None else match.at_s,
                "mttd_s": mttd,
                "mttr_s": mttr,
                "detection_required": required,
            }
        )

    def stats(latencies: List[float]) -> Dict[str, float]:
        if not latencies:
            return {"count": 0, "mean_s": 0.0, "max_s": 0.0}
        return {
            "count": len(latencies),
            "mean_s": sum(latencies) / len(latencies),
            "max_s": max(latencies),
        }

    return {
        "faults": rows,
        "injected": len(rows),
        "detected": len(detected_latencies),
        "undetected_required": undetected_required,
        "mttd": stats(detected_latencies),
        "mttr": stats(repair_latencies),
    }


__all__ = [
    "AlertEvent",
    "BurnRateRule",
    "GaugeRule",
    "HealthEngine",
    "REQUIRED_DETECTION_KINDS",
    "default_burn_rules",
    "default_gauge_rules",
    "health_scores",
    "join_detections",
]
