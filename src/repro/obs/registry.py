"""The metrics plane: one registry, dotted names, live views.

Every component registers its counters and gauges under a dotted name
(``qindb.north-dc1.g0.n0.read_cache.hits``, ``ssd.<node>.gc_write_ops``,
``bifrost.link.origin->north.bytes``) as a zero-argument callable that
reads the *existing* counter — there is no second copy of any tally, so
registering a metric can never drift from the component's own view.

A :meth:`MetricsRegistry.snapshot` materializes every callable at one
instant; two snapshots diff with :meth:`MetricsSnapshot.delta` (counters
registered between the two snapshots read as 0.0 in the earlier one), and
prefix queries slice either the registry or a snapshot by subsystem.
:class:`~repro.core.metrics.ThroughputSampler` accepts a registry as its
counter source, turning any registered counter into a rate series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import ConfigError

MetricReader = Callable[[], float]


def _matches(name: str, prefix: Optional[str]) -> bool:
    """Dotted-prefix match: ``qindb`` matches ``qindb.n0.puts`` but a
    prefix never matches mid-segment (``qin`` does not match)."""
    if prefix is None:
        return True
    return name == prefix or name.startswith(prefix + ".")


@dataclass
class MetricsSnapshot:
    """Every registered metric's value at one instant."""

    at: float
    values: Dict[str, float] = field(default_factory=dict)

    def value(self, name: str, default: float = 0.0) -> float:
        return self.values.get(name, default)

    def query(self, prefix: str) -> Dict[str, float]:
        """The subset of values whose dotted name falls under ``prefix``."""
        return {
            name: value
            for name, value in self.values.items()
            if _matches(name, prefix)
        }

    def delta(self, earlier: "MetricsSnapshot") -> Dict[str, float]:
        """Per-counter differences since ``earlier``.

        A counter absent from the earlier snapshot (registered mid-run)
        counts from 0.0, so growing systems never KeyError a diff; a
        counter absent from *this* snapshot (unregistered, or an array
        row that shrank) reports 0.0 growth instead of silently
        vanishing — the union of both name sets always comes back.
        """
        out = {
            name: value - earlier.values.get(name, 0.0)
            for name, value in self.values.items()
        }
        for name in earlier.values:
            if name not in out:
                out[name] = 0.0
        return out


#: reads a whole row of related counters in one call
RowReader = Callable[[], Iterable[float]]


class _ArrayView:
    """One row-reader backing several dotted names.

    ``read_row()`` returns a sequence; member ``prefix.suffixes[i]``
    reads ``row[indices[i]]``.  A snapshot calls the row reader *once*
    for the whole group instead of once per member — for wide per-hop
    counter families (every link exports bytes/transfers/errors/state)
    that cuts both the closures held per link and the calls per
    snapshot by the family width.
    """

    __slots__ = ("prefix", "suffixes", "indices", "read_row")

    def __init__(self, prefix, suffixes, indices, read_row) -> None:
        self.prefix = prefix
        self.suffixes = suffixes
        self.indices = indices
        self.read_row = read_row

    def names(self) -> List[str]:
        prefix = self.prefix
        return [f"{prefix}.{suffix}" for suffix in self.suffixes]


class MetricsRegistry:
    """Dotted-name registry of live counter/gauge views.

    The registry stores *callables*, not values: every read goes straight
    to the owning component's counter, so there is no double bookkeeping
    and no staleness.  Instances are independent — each
    :class:`~repro.core.directload.DirectLoad` owns one — but a
    process-wide default exists for scripts that want a shared plane
    (:func:`get_default_registry`).

    Metrics register either one at a time (:meth:`register`) or as an
    *array view* (:meth:`register_array`): one callable returning a row
    of values that backs a whole family of names.  Both kinds occupy one
    slot in registration order, so :meth:`collect` — and therefore
    snapshot and report contents — are identical whichever way a family
    was registered.
    """

    def __init__(self) -> None:
        #: registration order: scalar names (str) and array groups
        self._order: List = []
        #: scalar name -> reader
        self._metrics: Dict[str, MetricReader] = {}
        #: array member name -> (group, row index)
        self._members: Dict[str, tuple] = {}

    def __len__(self) -> int:
        return len(self._metrics) + len(self._members)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics or name in self._members

    # ------------------------------------------------------------------
    def _validate(self, name: str, replace: bool) -> None:
        if not name or name.startswith(".") or name.endswith("."):
            raise ConfigError(f"invalid metric name {name!r}")
        if name in self and not replace:
            raise ConfigError(f"metric {name!r} already registered")

    def _drop(self, name: str) -> None:
        """Remove one name, splitting its array group if it has one."""
        if self._metrics.pop(name, None) is not None:
            self._order.remove(name)
            return
        entry = self._members.pop(name, None)
        if entry is None:
            return
        group, _index = entry
        keep = [
            (suffix, index)
            for suffix, index in zip(group.suffixes, group.indices)
            if f"{group.prefix}.{suffix}" != name
        ]
        position = self._order.index(group)
        if keep:
            survivor = _ArrayView(
                group.prefix,
                tuple(suffix for suffix, _ in keep),
                tuple(index for _, index in keep),
                group.read_row,
            )
            self._order[position] = survivor
            for suffix, index in keep:
                self._members[f"{group.prefix}.{suffix}"] = (survivor, index)
        else:
            del self._order[position]

    def register(
        self, name: str, read: MetricReader, replace: bool = False
    ) -> None:
        """Register ``name`` -> ``read()``; duplicate names are an error
        unless ``replace`` is set (component re-created in place)."""
        self._validate(name, replace)
        if name in self:
            self._drop(name)
        self._metrics[name] = read
        self._order.append(name)

    def register_many(
        self, prefix: str, readers: Dict[str, MetricReader], replace: bool = False
    ) -> None:
        """Register ``{suffix: reader}`` under ``prefix.suffix``."""
        for suffix, read in readers.items():
            self.register(f"{prefix}.{suffix}", read, replace=replace)

    def register_array(
        self,
        prefix: str,
        suffixes: Iterable[str],
        read_row: RowReader,
        replace: bool = False,
    ) -> None:
        """Register ``prefix.suffix`` per suffix, all backed by one
        row-reader.

        ``read_row()`` must return one value per suffix, in suffix
        order.  The family shows up in every query exactly as if each
        member had been registered individually; only the storage (one
        callable, not one per member) and the snapshot cost (one call,
        not one per member) differ.
        """
        suffixes = tuple(suffixes)
        if not suffixes:
            raise ConfigError(f"array view {prefix!r} needs at least one suffix")
        names = [f"{prefix}.{suffix}" for suffix in suffixes]
        for name in names:
            self._validate(name, replace)
        for name in names:
            if name in self:
                self._drop(name)
        group = _ArrayView(
            prefix, suffixes, tuple(range(len(suffixes))), read_row
        )
        self._order.append(group)
        for index, name in enumerate(names):
            self._members[name] = (group, index)

    def unregister_prefix(self, prefix: str) -> int:
        """Drop every metric under ``prefix``; returns how many died."""
        doomed = [
            name
            for name in list(self._metrics) + list(self._members)
            if _matches(name, prefix)
        ]
        for name in doomed:
            self._drop(name)
        return len(doomed)

    # ------------------------------------------------------------------
    def names(self, prefix: Optional[str] = None) -> List[str]:
        """Registered names (under ``prefix``), sorted."""
        return sorted(
            name
            for name in list(self._metrics) + list(self._members)
            if _matches(name, prefix)
        )

    def value(self, name: str) -> float:
        """Read one metric live."""
        read = self._metrics.get(name)
        if read is not None:
            return float(read())
        try:
            group, index = self._members[name]
        except KeyError:
            raise ConfigError(f"no metric named {name!r}") from None
        row = tuple(group.read_row())
        # A row shorter than its registered family (a member added to
        # the registration before the backing store grew, mid-run) reads
        # 0.0 — the same "pre-registration history is zero" contract
        # scalar counters follow — instead of killing the read.
        return float(row[index]) if index < len(row) else 0.0

    def collect(self, prefix: Optional[str] = None) -> Dict[str, float]:
        """Materialize every (matching) metric into a plain dict.

        This is the shape :class:`~repro.core.metrics.ThroughputSampler`
        snapshots, so a registry drops in wherever a counter dict did.
        Array-view families read their row once per collect.
        """
        out: Dict[str, float] = {}
        metrics = self._metrics
        for entry in self._order:
            if entry.__class__ is str:
                if _matches(entry, prefix):
                    out[entry] = float(metrics[entry]())
                continue
            entry_prefix = entry.prefix
            if prefix is not None and not _matches(
                entry_prefix, prefix
            ):
                wanted = [
                    (f"{entry_prefix}.{suffix}", index)
                    for suffix, index in zip(entry.suffixes, entry.indices)
                    if _matches(f"{entry_prefix}.{suffix}", prefix)
                ]
                if not wanted:
                    continue
                row = tuple(entry.read_row())
                width = len(row)
                for name, index in wanted:
                    # Short rows (family registered before the backing
                    # store grew) read 0.0 past the end, never IndexError
                    # — one lagging row must not kill the whole snapshot.
                    out[name] = float(row[index]) if index < width else 0.0
                continue
            row = tuple(entry.read_row())
            width = len(row)
            indices = entry.indices
            for position, suffix in enumerate(entry.suffixes):
                index = indices[position]
                out[f"{entry_prefix}.{suffix}"] = (
                    float(row[index]) if index < width else 0.0
                )
        return out

    def snapshot(
        self, prefix: Optional[str] = None, at: float = 0.0
    ) -> MetricsSnapshot:
        """A :class:`MetricsSnapshot` of the current values."""
        return MetricsSnapshot(at=at, values=self.collect(prefix))


_default: Optional[MetricsRegistry] = None


def get_default_registry() -> MetricsRegistry:
    """The lazily-created process-wide registry."""
    global _default
    if _default is None:
        _default = MetricsRegistry()
    return _default


def set_default_registry(registry: Optional[MetricsRegistry]) -> None:
    """Inject (or reset with ``None``) the process-wide registry."""
    global _default
    _default = registry
