"""The metrics plane: one registry, dotted names, live views.

Every component registers its counters and gauges under a dotted name
(``qindb.north-dc1.g0.n0.read_cache.hits``, ``ssd.<node>.gc_write_ops``,
``bifrost.link.origin->north.bytes``) as a zero-argument callable that
reads the *existing* counter — there is no second copy of any tally, so
registering a metric can never drift from the component's own view.

A :meth:`MetricsRegistry.snapshot` materializes every callable at one
instant; two snapshots diff with :meth:`MetricsSnapshot.delta` (counters
registered between the two snapshots read as 0.0 in the earlier one), and
prefix queries slice either the registry or a snapshot by subsystem.
:class:`~repro.core.metrics.ThroughputSampler` accepts a registry as its
counter source, turning any registered counter into a rate series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import ConfigError

MetricReader = Callable[[], float]


def _matches(name: str, prefix: Optional[str]) -> bool:
    """Dotted-prefix match: ``qindb`` matches ``qindb.n0.puts`` but a
    prefix never matches mid-segment (``qin`` does not match)."""
    if prefix is None:
        return True
    return name == prefix or name.startswith(prefix + ".")


@dataclass
class MetricsSnapshot:
    """Every registered metric's value at one instant."""

    at: float
    values: Dict[str, float] = field(default_factory=dict)

    def value(self, name: str, default: float = 0.0) -> float:
        return self.values.get(name, default)

    def query(self, prefix: str) -> Dict[str, float]:
        """The subset of values whose dotted name falls under ``prefix``."""
        return {
            name: value
            for name, value in self.values.items()
            if _matches(name, prefix)
        }

    def delta(self, earlier: "MetricsSnapshot") -> Dict[str, float]:
        """Per-counter differences since ``earlier``.

        A counter absent from the earlier snapshot (registered mid-run)
        counts from 0.0, so growing systems never KeyError a diff.
        """
        return {
            name: value - earlier.values.get(name, 0.0)
            for name, value in self.values.items()
        }


class MetricsRegistry:
    """Dotted-name registry of live counter/gauge views.

    The registry stores *callables*, not values: every read goes straight
    to the owning component's counter, so there is no double bookkeeping
    and no staleness.  Instances are independent — each
    :class:`~repro.core.directload.DirectLoad` owns one — but a
    process-wide default exists for scripts that want a shared plane
    (:func:`get_default_registry`).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, MetricReader] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # ------------------------------------------------------------------
    def register(
        self, name: str, read: MetricReader, replace: bool = False
    ) -> None:
        """Register ``name`` -> ``read()``; duplicate names are an error
        unless ``replace`` is set (component re-created in place)."""
        if not name or name.startswith(".") or name.endswith("."):
            raise ConfigError(f"invalid metric name {name!r}")
        if name in self._metrics and not replace:
            raise ConfigError(f"metric {name!r} already registered")
        self._metrics[name] = read

    def register_many(
        self, prefix: str, readers: Dict[str, MetricReader], replace: bool = False
    ) -> None:
        """Register ``{suffix: reader}`` under ``prefix.suffix``."""
        for suffix, read in readers.items():
            self.register(f"{prefix}.{suffix}", read, replace=replace)

    def unregister_prefix(self, prefix: str) -> int:
        """Drop every metric under ``prefix``; returns how many died."""
        doomed = [name for name in self._metrics if _matches(name, prefix)]
        for name in doomed:
            del self._metrics[name]
        return len(doomed)

    # ------------------------------------------------------------------
    def names(self, prefix: Optional[str] = None) -> List[str]:
        """Registered names (under ``prefix``), sorted."""
        return sorted(n for n in self._metrics if _matches(n, prefix))

    def value(self, name: str) -> float:
        """Read one metric live."""
        try:
            read = self._metrics[name]
        except KeyError:
            raise ConfigError(f"no metric named {name!r}") from None
        return float(read())

    def collect(self, prefix: Optional[str] = None) -> Dict[str, float]:
        """Materialize every (matching) metric into a plain dict.

        This is the shape :class:`~repro.core.metrics.ThroughputSampler`
        snapshots, so a registry drops in wherever a counter dict did.
        """
        return {
            name: float(read())
            for name, read in self._metrics.items()
            if _matches(name, prefix)
        }

    def snapshot(
        self, prefix: Optional[str] = None, at: float = 0.0
    ) -> MetricsSnapshot:
        """A :class:`MetricsSnapshot` of the current values."""
        return MetricsSnapshot(at=at, values=self.collect(prefix))


_default: Optional[MetricsRegistry] = None


def get_default_registry() -> MetricsRegistry:
    """The lazily-created process-wide registry."""
    global _default
    if _default is None:
        _default = MetricsRegistry()
    return _default


def set_default_registry(registry: Optional[MetricsRegistry]) -> None:
    """Inject (or reset with ``None``) the process-wide registry."""
    global _default
    _default = registry
