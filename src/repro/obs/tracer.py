"""The trace plane: hierarchical spans stamped with simulated time.

A :class:`Tracer` reads its clock from the simulation (any object with a
``now`` attribute, or a plain callable), so spans measure *simulated*
seconds — the time base every figure in the paper is plotted against —
not wall-clock Python overhead.

Spans are grouped into named **tracks**.  Each track is sequential (its
spans open and close in stack order), which is exactly how the simulator
interleaves processes: one delivery process is sequential in simulated
time even though many deliveries overlap.  The main track carries the
update cycle's pipeline stages; each delivery process gets its own track
whose root span parents to whatever the main track has open, so per-hop
transmit spans nest under the cycle's ``transmit`` stage.  A track may
carry its *own* clock (a storage engine's device clock for GC and
checkpoint spans); such tracks never parent into the main track, since
their timestamps live on a different time base.

Exports: :meth:`Tracer.to_json` (plain span dicts) and
:meth:`Tracer.to_chrome_trace` (Chrome ``trace_event`` format — load the
file in ``chrome://tracing`` or Perfetto).  :meth:`Tracer.stage_summary`
folds the finished spans into the per-stage table the cycle report and
``repro observe`` print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigError

Clock = Callable[[], float]

MAIN_TRACK = "main"


def _as_clock(source) -> Clock:
    """Accept a Simulator/device (has ``.now``) or a plain callable."""
    if callable(source):
        return source
    if hasattr(source, "now"):
        return lambda: source.now
    raise ConfigError(f"clock source {source!r} has no .now and is not callable")


@dataclass(slots=True)
class Instant:
    """A zero-duration marker event (an alert firing, a fault landing).

    Instants share the span tracks but carry no hierarchy — they exist
    so detections line up against injected faults in the trace viewer.
    """

    name: str
    track: str
    at_s: float
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "track": self.track,
            "at_s": self.at_s,
            "attrs": dict(self.attrs),
        }


@dataclass(slots=True)
class Span:
    """One timed region of the pipeline."""

    span_id: int
    name: str
    track: str
    start_s: float
    attrs: Dict[str, object] = field(default_factory=dict)
    parent_id: Optional[int] = None
    end_s: Optional[float] = None

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        return 0.0 if self.end_s is None else self.end_s - self.start_s

    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "track": self.track,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "parent_id": self.parent_id,
            "attrs": dict(self.attrs),
        }


class _NullAttrs(dict):
    """Write-discarding attrs shared by the disabled tracer's one span.

    The null span is a process-wide singleton, so accepting (and
    dropping) writes keeps instrumented code identical on both paths —
    no ``if tracer.enabled`` at call sites — without accumulating state.
    """

    def __setitem__(self, key, value) -> None:
        pass

    def setdefault(self, key, default=None):
        return default

    def update(self, *args, **kwargs) -> None:
        pass


class _NullSpan:
    """The disabled tracer's span: every field inert, nothing recorded."""

    __slots__ = ()

    span_id = 0
    name = ""
    track = ""
    start_s = 0.0
    end_s = 0.0
    parent_id = None
    attrs = _NullAttrs()
    finished = True
    duration_s = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {}


_NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """``span()``'s return when tracing is off: reusable, allocation-free."""

    __slots__ = ()

    span = _NULL_SPAN

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, _tb) -> bool:
        return False


_NULL_CONTEXT = _NullSpanContext()


class _SpanContext:
    """Context manager opening a span on enter, closing it on exit.

    Exceptions propagate (the span closes with an ``error`` attribute),
    so a retransmitted hop leaves a visible failed span in the trace.
    """

    def __init__(self, tracer: "Tracer", name: str, track: str,
                 clock: Clock, attrs: Dict[str, object],
                 parent: Optional[Span] = None) -> None:
        self._tracer = tracer
        self._name = name
        self._track = track
        self._clock = clock
        self._attrs = attrs
        self._parent = parent
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self._tracer._open(
            self._name, self._track, self._clock(), self._attrs,
            parent=self._parent,
        )
        return self.span

    def __exit__(self, exc_type, exc, _tb) -> bool:
        if exc is not None:
            self.span.attrs.setdefault("error", type(exc).__name__)
        self._tracer._close(self.span, self._clock())
        return False


class TraceTrack:
    """A bound (track name, clock) handle — what components hold.

    A component owning a track (a storage engine, a delivery process)
    opens spans without knowing the tracer's default clock or naming.
    """

    def __init__(self, tracer: "Tracer", name: str, clock: Clock) -> None:
        self.tracer = tracer
        self.name = name
        self._clock = clock

    def span(
        self, name: str, parent: Optional[Span] = None, **attrs
    ) -> _SpanContext:
        if not self.tracer.enabled:
            return _NULL_CONTEXT
        return _SpanContext(
            self.tracer, name, self.name, self._clock, attrs, parent=parent
        )


class Tracer:
    """Collects hierarchical spans across all tracks of one system."""

    def __init__(self, clock, enabled: bool = True) -> None:
        self._clock = _as_clock(clock)
        #: the null path: when False, ``span()`` hands out one shared
        #: inert context and nothing is ever recorded or allocated
        self.enabled = bool(enabled)
        self.spans: List[Span] = []
        self.instants: List[Instant] = []
        self._open_stacks: Dict[str, List[Span]] = {}
        #: tracks whose clock differs from the tracer's (never parent
        #: into the main track: different time base)
        self._foreign_clock_tracks: set[str] = set()
        self._next_id = 1

    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        track: str = MAIN_TRACK,
        parent: Optional[Span] = None,
        **attrs,
    ) -> _SpanContext:
        """Open a span on ``track`` (default: the main pipeline track).

        ``parent`` explicitly parents the span when it opens a *fresh*
        track (its open-stack is empty) — how concurrent multi-version
        pipelines keep each delivery/ingest track under the right
        version's cycle span instead of whatever main happens to have
        open.  A nested span (non-empty stack) always parents to the
        track's innermost open span; ``parent`` is ignored there.
        """
        if not self.enabled:
            return _NULL_CONTEXT
        return _SpanContext(self, name, track, self._clock, attrs, parent=parent)

    def track(self, name: str, clock=None) -> TraceTrack:
        """A handle for opening spans on one named track.

        ``clock`` overrides the tracer's time source for this track
        (e.g. an engine's device clock); such a track's spans stay
        parentless at their root rather than nesting under main-track
        spans stamped on a different time base.
        """
        if clock is None:
            return TraceTrack(self, name, self._clock)
        self._foreign_clock_tracks.add(name)
        return TraceTrack(self, name, _as_clock(clock))

    def instant(
        self,
        name: str,
        track: str = MAIN_TRACK,
        at: Optional[float] = None,
        **attrs,
    ) -> Optional[Instant]:
        """Record a zero-duration marker on ``track``.

        ``at`` overrides the tracer clock (alert engines evaluate at a
        sample timestamp, not "now").  No-op when tracing is disabled.
        """
        if not self.enabled:
            return None
        event = Instant(
            name=name,
            track=track,
            at_s=self._clock() if at is None else at,
            attrs=dict(attrs),
        )
        self.instants.append(event)
        return event

    def current(self, track: str = MAIN_TRACK) -> Optional[Span]:
        """The innermost open span on ``track``, if any."""
        stack = self._open_stacks.get(track)
        return stack[-1] if stack else None

    def clear(self) -> None:
        """Drop all finished spans and instants (open spans survive)."""
        self.spans = [s for s in self.spans if not s.finished]
        self.instants = []

    # ------------------------------------------------------------------
    def _open(self, name: str, track: str, at: float,
              attrs: Dict[str, object],
              parent: Optional[Span] = None) -> Span:
        stack = self._open_stacks.setdefault(track, [])
        explicit = parent if not stack else None
        parent = stack[-1] if stack else explicit
        if parent is None and track != MAIN_TRACK:
            # A fresh track's root span nests under whatever pipeline
            # stage is currently open — unless the track runs on its own
            # clock, whose timestamps would not lie inside main's bounds.
            if track not in self._foreign_clock_tracks:
                main = self._open_stacks.get(MAIN_TRACK)
                parent = main[-1] if main else None
        span = Span(
            span_id=self._next_id,
            name=name,
            track=track,
            start_s=at,
            attrs=dict(attrs),
            parent_id=parent.span_id if parent else None,
        )
        self._next_id += 1
        stack.append(span)
        self.spans.append(span)
        return span

    def _close(self, span: Span, at: float) -> None:
        span.end_s = at
        stack = self._open_stacks.get(span.track, [])
        if stack and stack[-1] is span:
            stack.pop()
        else:  # pragma: no cover - misuse guard (out-of-order close)
            try:
                stack.remove(span)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def finished_spans(self) -> List[Span]:
        return [s for s in self.spans if s.finished]

    def to_json(self) -> List[Dict[str, object]]:
        """Plain dicts for every finished span, in creation order."""
        return [s.to_dict() for s in self.finished_spans()]

    def to_chrome_trace(self, pid: int = 1) -> Dict[str, object]:
        """The Chrome ``trace_event`` format (``chrome://tracing``).

        One complete ("X") event per finished span and one instant
        ("i", global scope) event per marker — timestamps in
        microseconds, one ``tid`` per track, thread-name metadata events
        labelling each track.  Span events are sorted by start time
        within each track, so ``ts`` is monotonically non-decreasing per
        track.
        """
        tids: Dict[str, int] = {}
        for span in self.finished_spans():
            tids.setdefault(span.track, len(tids))
        for event in self.instants:
            tids.setdefault(event.track, len(tids))
        events: List[Dict[str, object]] = [
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "ts": 0,
                "args": {"name": track},
            }
            for track, tid in tids.items()
        ]
        spans = sorted(
            self.finished_spans(), key=lambda s: (tids[s.track], s.start_s, s.span_id)
        )
        for span in spans:
            events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "cat": span.track,
                    "pid": pid,
                    "tid": tids[span.track],
                    "ts": span.start_s * 1e6,
                    "dur": span.duration_s * 1e6,
                    "args": dict(span.attrs, span_id=span.span_id),
                }
            )
        for event in sorted(
            self.instants, key=lambda e: (tids[e.track], e.at_s)
        ):
            events.append(
                {
                    "ph": "i",
                    "s": "g",
                    "name": event.name,
                    "cat": event.track,
                    "pid": pid,
                    "tid": tids[event.track],
                    "ts": event.at_s * 1e6,
                    "args": dict(event.attrs),
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    # ------------------------------------------------------------------
    def stage_summary(
        self, root_name: str = "cycle", root_id: Optional[int] = None
    ) -> List[Dict[str, object]]:
        """Per-stage totals under one root span.

        Folds every finished descendant of the root (the most recent
        span named ``root_name``, or the explicit ``root_id``) by span
        name: count, total seconds, and share of the root's duration.
        Rows are ordered by first occurrence, so the table reads in
        pipeline order.
        """
        finished = self.finished_spans()
        by_id = {s.span_id: s for s in finished}
        root: Optional[Span] = None
        if root_id is not None:
            root = by_id.get(root_id)
        else:
            for span in reversed(finished):
                if span.name == root_name:
                    root = span
                    break
        if root is None:
            return []
        descendants: List[Span] = []
        for span in finished:
            walk = span
            while walk.parent_id is not None:
                if walk.parent_id == root.span_id:
                    descendants.append(span)
                    break
                walk = by_id.get(walk.parent_id)
                if walk is None:
                    break
        rows: Dict[str, Dict[str, object]] = {}
        for span in descendants:
            row = rows.setdefault(
                span.name, {"stage": span.name, "count": 0, "total_s": 0.0}
            )
            row["count"] += 1
            row["total_s"] += span.duration_s
        cycle_s = root.duration_s
        for row in rows.values():
            row["share"] = row["total_s"] / cycle_s if cycle_s > 0 else 0.0
        return list(rows.values())
