"""Per-stage resource attribution over tracer spans.

The tracer records *what happened when*; the profiler folds the finished
spans into *what it cost*: per-operation counts, total and self
simulated time (self = duration minus direct children, the flamegraph
convention), bytes moved (summed from span ``bytes`` attributes), and
device busy time (spans on foreign-clock tracks — storage-engine device
clocks — measure device occupancy, not simulated wall time, so they
aggregate separately).

Two exports:

* :func:`profile_tracer` — the flat attribution table plus top-k hot
  operations by self time;
* :func:`flamegraph` — the nested ``{name, value, children}`` JSON the
  d3-flamegraph family of viewers consumes, with same-name siblings
  folded the way stack collapsing does.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: span attribute keys that count as "bytes moved" by that operation
_BYTE_ATTRS = ("bytes", "bytes_sent", "bytes_copied")


def _span_bytes(attrs: Dict[str, object]) -> float:
    total = 0.0
    for key in _BYTE_ATTRS:
        value = attrs.get(key)
        if isinstance(value, (int, float)):
            total += float(value)
    return total


def profile_tracer(tracer, top_k: int = 10) -> Dict[str, object]:
    """Fold finished spans into a per-operation resource table.

    Foreign-clock tracks (device clocks) contribute to ``device_s``
    instead of ``total_s``/``self_s`` — their timestamps live on a
    different time base and must not mix with simulated-time totals.
    """
    spans = tracer.finished_spans()
    foreign = getattr(tracer, "_foreign_clock_tracks", set())
    child_time: Dict[int, float] = {}
    for span in spans:
        if span.parent_id is not None and span.track not in foreign:
            child_time[span.parent_id] = (
                child_time.get(span.parent_id, 0.0) + span.duration_s
            )
    rows: Dict[str, Dict[str, object]] = {}
    device_total = 0.0
    bytes_total = 0.0
    for span in spans:
        row = rows.setdefault(
            span.name,
            {
                "operation": span.name,
                "count": 0,
                "total_s": 0.0,
                "self_s": 0.0,
                "device_s": 0.0,
                "bytes": 0.0,
            },
        )
        row["count"] += 1
        moved = _span_bytes(span.attrs)
        row["bytes"] += moved
        bytes_total += moved
        if span.track in foreign:
            row["device_s"] += span.duration_s
            device_total += span.duration_s
            continue
        row["total_s"] += span.duration_s
        self_s = span.duration_s - child_time.get(span.span_id, 0.0)
        row["self_s"] += max(0.0, self_s)
    ordered = sorted(
        rows.values(),
        key=lambda row: (row["total_s"], row["device_s"]),
        reverse=True,
    )
    hot = sorted(
        rows.values(),
        key=lambda row: (row["self_s"], row["device_s"]),
        reverse=True,
    )
    return {
        "span_count": len(spans),
        "stages": ordered,
        "top_ops": [row["operation"] for row in hot[:top_k]],
        "device_busy_s": device_total,
        "bytes_moved": bytes_total,
    }


def _fold_children(
    children_of: Dict[Optional[int], List],
    parent_ids: List[Optional[int]],
) -> List[Dict[str, object]]:
    """Merge same-name children of ``parent_ids``, recursively.

    Stack collapsing: every span named ``a`` under any of the merged
    parents becomes one node whose children are in turn the merged
    children of *all* those ``a`` spans — so ``cycle -> build`` twice
    folds into one ``build`` frame of summed width.
    """
    groups: Dict[str, List] = {}
    order: List[str] = []
    for parent_id in parent_ids:
        for span in children_of.get(parent_id, ()):
            if span.name not in groups:
                groups[span.name] = []
                order.append(span.name)
            groups[span.name].append(span)
    return [
        {
            "name": name,
            "value": sum(span.duration_s for span in groups[name]),
            "count": len(groups[name]),
            "children": _fold_children(
                children_of, [span.span_id for span in groups[name]]
            ),
        }
        for name in order
    ]


def flamegraph(tracer, root_name: str = "trace") -> Dict[str, object]:
    """Nested ``{name, value, children}`` JSON over the span forest.

    ``value`` is total simulated seconds (the d3-flamegraph width
    metric); parentless spans become the synthetic root's children.
    Foreign-clock tracks are excluded — their time base differs.
    """
    foreign = getattr(tracer, "_foreign_clock_tracks", set())
    spans = [
        span for span in tracer.finished_spans()
        if span.track not in foreign
    ]
    known = {span.span_id for span in spans}
    children_of: Dict[Optional[int], List] = {}
    for span in spans:
        parent = span.parent_id if span.parent_id in known else None
        children_of.setdefault(parent, []).append(span)
    for siblings in children_of.values():
        siblings.sort(key=lambda span: span.span_id)
    children = _fold_children(children_of, [None])
    return {
        "name": root_name,
        "value": sum(child["value"] for child in children),
        "count": len(spans),
        "children": children,
    }


__all__ = ["flamegraph", "profile_tracer"]
