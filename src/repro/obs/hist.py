"""Mergeable log-bucketed histograms (HDR-style, fixed memory).

A :class:`LogHistogram` spreads samples across geometrically growing
buckets: bucket ``i`` covers ``(min_value * growth**(i-1),
min_value * growth**i]``, so relative resolution is constant —
``growth - 1`` (2% by default) — from microseconds to hours in ~1200
``int`` slots.  That buys three things the exact/streaming
:class:`~repro.core.metrics.PercentileTracker` cannot offer together:

* **fixed memory** regardless of sample count (no reservoir, no
  sampling error that depends on the seed);
* **mergeability** — two histograms with the same geometry add
  bucket-wise, so per-replica latency distributions aggregate into a
  fleet distribution without shipping samples;
* **deterministic bounded-error percentiles** — a percentile read
  returns its bucket's *upper* bound, so the reported value is always
  ``>=`` the exact nearest-rank percentile and within one bucket width
  (a factor of ``growth``) of it.

The mean stays exact either way (running sum).  The API mirrors
``PercentileTracker`` (``add``/``extend``/``percentile``/``quantiles``/
``summary``/``len``) so it drops into the serving SLO path unchanged.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError


class LogHistogram:
    """Fixed-memory histogram with geometric buckets.

    ``min_value`` is the resolution floor (everything at or below it
    lands in the underflow bucket and reads back as ``min_value``);
    ``max_value`` the ceiling (everything at or above it lands in the
    overflow bucket and reads back as ``max_value``); ``growth`` the
    per-bucket factor bounding relative error.
    """

    __slots__ = (
        "min_value", "max_value", "growth",
        "_log_growth", "_counts", "_count", "_sum",
    )

    def __init__(
        self,
        min_value: float = 1e-6,
        max_value: float = 1e4,
        growth: float = 1.02,
    ) -> None:
        if min_value <= 0:
            raise ConfigError(f"min_value must be positive, got {min_value}")
        if max_value <= min_value:
            raise ConfigError(
                f"max_value must exceed min_value, got {max_value}"
            )
        if growth <= 1.0:
            raise ConfigError(f"growth must be > 1, got {growth}")
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.growth = float(growth)
        self._log_growth = math.log(self.growth)
        # bucket 0: underflow (<= min); buckets 1..n: geometric; last:
        # overflow (>= max).
        spans = int(
            math.ceil(
                math.log(self.max_value / self.min_value) / self._log_growth
            )
        )
        self._counts: List[int] = [0] * (spans + 2)
        self._count = 0
        self._sum = 0.0

    # ------------------------------------------------------------------
    @property
    def bucket_count(self) -> int:
        return len(self._counts)

    @property
    def relative_error(self) -> float:
        """Worst-case relative width of one bucket (``growth - 1``)."""
        return self.growth - 1.0

    def same_geometry(self, other: "LogHistogram") -> bool:
        return (
            self.min_value == other.min_value
            and self.max_value == other.max_value
            and self.growth == other.growth
            and len(self._counts) == len(other._counts)
        )

    def _upper(self, index: int) -> float:
        """The value a sample in bucket ``index`` reads back as."""
        if index <= 0:
            return self.min_value
        if index >= len(self._counts) - 1:
            return self.max_value
        return min(self.min_value * self.growth ** index, self.max_value)

    def _index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        if value >= self.max_value:
            return len(self._counts) - 1
        index = 1 + int(
            math.log(value / self.min_value) / self._log_growth
        )
        # Float log can land one bucket low on exact boundaries; the
        # upper-bound contract (read-back >= sample) must still hold.
        while self._upper(index) < value:
            index += 1
        return min(index, len(self._counts) - 1)

    # ------------------------------------------------------------------
    def add(self, sample: float) -> None:
        self._counts[self._index(sample)] += 1
        self._count += 1
        self._sum += sample

    def extend(self, samples: Sequence[float]) -> None:
        for sample in samples:
            self.add(sample)

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold another histogram's buckets into this one (in place)."""
        if not self.same_geometry(other):
            raise ConfigError(
                "cannot merge histograms with different geometries: "
                f"({self.min_value}, {self.max_value}, {self.growth}) vs "
                f"({other.min_value}, {other.max_value}, {other.growth})"
            )
        counts = self._counts
        for index, count in enumerate(other._counts):
            counts[index] += count
        self._count += other._count
        self._sum += other._sum
        return self

    @classmethod
    def merged(
        cls, histograms: Iterable["LogHistogram"]
    ) -> "LogHistogram":
        """A new histogram aggregating every input (e.g. all replicas)."""
        result: Optional[LogHistogram] = None
        for histogram in histograms:
            if result is None:
                result = cls(
                    histogram.min_value,
                    histogram.max_value,
                    histogram.growth,
                )
            result.merge(histogram)
        return result if result is not None else cls()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Samples observed (every sample is counted, none are held)."""
        return self._count

    @property
    def mean(self) -> float:
        """Exact running mean (bucketing never touches the sum)."""
        return self._sum / self._count if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Upper bound of the bucket holding the nearest-rank sample.

        Always ``>=`` the exact percentile and within one bucket width
        of it (``exact <= reported <= exact * growth``).
        """
        if not 0.0 <= p <= 100.0:
            raise ConfigError(f"percentile must be in [0, 100], got {p}")
        if not self._count:
            return 0.0
        rank = max(1, math.ceil(p / 100.0 * self._count - 1e-9))
        cumulative = 0
        for index, count in enumerate(self._counts):
            cumulative += count
            if cumulative >= rank:
                return self._upper(index)
        return self.max_value  # pragma: no cover - counts always cover

    def summary(self) -> Dict[str, float]:
        return {
            "avg": self.mean,
            "p99": self.percentile(99.0),
            "p999": self.percentile(99.9),
        }

    def quantiles(self) -> Dict[str, float]:
        """The serving-SLO view: median plus both tails, with count."""
        return {
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p99": self.percentile(99.0),
            "p999": self.percentile(99.9),
            "count": float(self._count),
        }

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Sparse JSON-friendly form (only touched buckets travel)."""
        return {
            "min_value": self.min_value,
            "max_value": self.max_value,
            "growth": self.growth,
            "count": self._count,
            "sum": self._sum,
            "buckets": {
                str(index): count
                for index, count in enumerate(self._counts)
                if count
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LogHistogram":
        histogram = cls(
            min_value=float(data["min_value"]),
            max_value=float(data["max_value"]),
            growth=float(data["growth"]),
        )
        for index, count in dict(data.get("buckets", {})).items():
            histogram._counts[int(index)] = int(count)
        histogram._count = int(data.get("count", 0))
        histogram._sum = float(data.get("sum", 0.0))
        return histogram

    def nonzero_buckets(self) -> List[Tuple[float, int]]:
        """(upper_bound, count) for every touched bucket, in order."""
        return [
            (self._upper(index), count)
            for index, count in enumerate(self._counts)
            if count
        ]


__all__ = ["LogHistogram"]
