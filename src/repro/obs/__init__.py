"""Observability: the metrics plane and the trace plane.

* :mod:`repro.obs.registry` — :class:`MetricsRegistry`, dotted-name live
  counter views with snapshots, prefix queries, and delta diffing;
* :mod:`repro.obs.tracer` — :class:`Tracer`, simulated-time hierarchical
  spans with JSON / Chrome ``trace_event`` export and per-stage summary;
* :mod:`repro.obs.runner` — ``repro observe``'s one-cycle harness
  (imported lazily; it depends on :mod:`repro.core`).
"""

from repro.obs.registry import (
    MetricsRegistry,
    MetricsSnapshot,
    get_default_registry,
    set_default_registry,
)
from repro.obs.tracer import Span, Tracer, TraceTrack

__all__ = [
    "MetricsRegistry",
    "MetricsSnapshot",
    "Span",
    "TraceTrack",
    "Tracer",
    "get_default_registry",
    "set_default_registry",
]
