"""Observability: metrics, traces, and the fleet-health telemetry stack.

* :mod:`repro.obs.registry` — :class:`MetricsRegistry`, dotted-name live
  counter views with snapshots, prefix queries, and delta diffing;
* :mod:`repro.obs.tracer` — :class:`Tracer`, simulated-time hierarchical
  spans with JSON / Chrome ``trace_event`` export and per-stage summary;
* :mod:`repro.obs.timeseries` — :class:`TimeSeriesRecorder`, bounded
  ring-buffer sampling of a registry with windowed deltas and rates;
* :mod:`repro.obs.hist` — :class:`LogHistogram`, mergeable log-bucketed
  percentile histograms (HDR-style, fixed memory);
* :mod:`repro.obs.health` — gauge and SLO burn-rate alerting plus
  fault/alert joins for detection-latency (MTTD/MTTR) accounting;
* :mod:`repro.obs.profiler` — per-stage resource attribution over tracer
  spans with flamegraph-style JSON export;
* :mod:`repro.obs.runner` — ``repro observe``'s one-cycle harness
  (imported lazily; it depends on :mod:`repro.core`).
"""

from repro.obs.health import (
    AlertEvent,
    BurnRateRule,
    GaugeRule,
    HealthEngine,
    default_burn_rules,
    default_gauge_rules,
    health_scores,
    join_detections,
)
from repro.obs.hist import LogHistogram
from repro.obs.profiler import flamegraph, profile_tracer
from repro.obs.registry import (
    MetricsRegistry,
    MetricsSnapshot,
    get_default_registry,
    set_default_registry,
)
from repro.obs.timeseries import RecorderConfig, TimeSeriesRecorder
from repro.obs.tracer import Instant, Span, Tracer, TraceTrack

__all__ = [
    "AlertEvent",
    "BurnRateRule",
    "GaugeRule",
    "HealthEngine",
    "Instant",
    "LogHistogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "RecorderConfig",
    "Span",
    "TimeSeriesRecorder",
    "TraceTrack",
    "Tracer",
    "default_burn_rules",
    "default_gauge_rules",
    "flamegraph",
    "get_default_registry",
    "health_scores",
    "join_detections",
    "profile_tracer",
    "set_default_registry",
]
