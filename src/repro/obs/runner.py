"""Run an observed DirectLoad cycle: one harness, trace + metrics out.

The runner builds a small-but-complete DirectLoad fleet, runs a few
update cycles, and packages everything the observability layer saw —
per-stage simulated-time breakdown, the registry snapshot, snapshot
deltas across the run, and the Chrome ``trace_event`` export — into a
single :class:`ObservationReport`.

Deliberately *not* imported from ``repro.obs.__init__``: this module
depends on ``repro.core.directload``, which itself imports ``repro.obs``
for the registry and tracer.  Import it directly
(``from repro.obs.runner import observe_cycle``) or via the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.registry import MetricsSnapshot
from repro.obs.tracer import Tracer


def observe_config():
    """A small fleet that still exercises every pipeline stage.

    Two regions' worth of data centers, three-node groups, chunked dedup
    on — large enough that transmit, ingest, GC, and gray release all
    fire, small enough to finish in seconds of wall time.
    """
    from repro.core.config import DirectLoadConfig
    from repro.mint.cluster import MintConfig

    return DirectLoadConfig(
        doc_count=60,
        vocabulary_size=400,
        doc_length=20,
        summary_value_bytes=512,
        forward_value_bytes=128,
        slice_bytes=64 * 1024,
        generation_window_s=30.0,
        mint=MintConfig(
            group_count=1,
            nodes_per_group=3,
            node_capacity_bytes=48 * 1024 * 1024,
        ),
    )


@dataclass
class ObservationReport:
    """Everything one observed run produced, ready for rendering."""

    cycles: List[Dict[str, object]]
    stages: List[Dict[str, object]]
    tracer: Tracer
    first_snapshot: MetricsSnapshot
    final_snapshot: MetricsSnapshot
    highlights: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view: cycles, stage table, metric deltas."""
        delta = self.final_snapshot.delta(self.first_snapshot)
        return {
            "cycles": self.cycles,
            "stages": self.stages,
            "highlights": self.highlights,
            "metrics": dict(sorted(self.final_snapshot.values.items())),
            "metrics_delta": dict(sorted(delta.items())),
            "span_count": len(self.tracer.spans),
        }

    def chrome_trace(self) -> Dict[str, object]:
        return self.tracer.to_chrome_trace()


def _highlights(snapshot: MetricsSnapshot) -> Dict[str, float]:
    """Fleet-level rollups of the interesting counter families."""

    def total(prefix: str, leaf: str) -> float:
        return sum(
            value
            for name, value in snapshot.values.items()
            if name.startswith(prefix) and name.endswith("." + leaf)
        )

    return {
        "qindb.user_bytes_written": total("qindb.", "user_bytes_written"),
        "qindb.aof_bytes_appended": total("qindb.", "aof_bytes_appended"),
        "qindb.gc_runs": total("qindb.", "gc_runs"),
        "qindb.read_cache.hits": total("qindb.", "read_cache.hits"),
        "qindb.read_cache.misses": total("qindb.", "read_cache.misses"),
        "qindb.batch.batches": total("qindb.", "batch.batches"),
        "ssd.host_pages_written": total("ssd.", "host_pages_written"),
        "ssd.gc_pages_written": total("ssd.", "gc_pages_written"),
        "bifrost.link_bytes": total("bifrost.link.", "bytes"),
        # Wire-vs-logical byte accounting: equal when wire encoding is
        # off; the encoding rollups read 0 then (nothing registered).
        "bifrost.wire_bytes_sent": total("bifrost.", "wire_bytes_sent"),
        "bifrost.payload_bytes_sent": total("bifrost.", "payload_bytes_sent"),
        "bifrost.encoding.bytes_saved": total("bifrost.", "bytes_saved"),
        "bifrost.wire.deltas_applied": total("mint.", "deltas_applied"),
        "bifrost.wire.slices_parked": total("mint.", "slices_parked"),
        # Tiered integrity: cheap ingest-tier checksums vs the rare
        # audit-tier cryptographic hashes.
        "integrity.ingest_checksums": total("integrity.", "ingest_checksums"),
        "integrity.seal_signatures": total("integrity.", "seal_signatures"),
        "integrity.audit_hashes": total("integrity.", "audit_hashes"),
        "mint.puts": total("mint.", "puts"),
        "mint.recoveries": total("mint.", "recoveries"),
    }


def observe_cycle(
    cycles: int = 2,
    mutation_rate: float = 0.3,
    config=None,
) -> ObservationReport:
    """Run ``cycles`` update cycles under full observation.

    The first cycle bootstraps version 1; later cycles mutate
    ``mutation_rate`` of the corpus so dedup, delta slices, and eviction
    all have work to do.  Returns the packaged :class:`ObservationReport`.
    """
    from repro.core.directload import DirectLoad

    system = DirectLoad(config or observe_config())
    first_snapshot = system.metrics.snapshot()
    cycle_rows: List[Dict[str, object]] = []
    for index in range(max(1, cycles)):
        rate: Optional[float] = None if index == 0 else mutation_rate
        report = system.run_update_cycle(mutation_rate=rate)
        cycle_rows.append(
            {
                "version": report.version,
                "entries_built": report.entries_built,
                "dedup_ratio": report.dedup_ratio,
                "bytes_sent": report.bytes_sent,
                "update_time_s": report.update_time_s,
                "keys_delivered": report.keys_delivered,
                "promoted": report.promoted,
            }
        )
    final_snapshot = system.metrics.snapshot()
    return ObservationReport(
        cycles=cycle_rows,
        stages=system.stage_summary(),
        tracer=system.tracer,
        first_snapshot=first_snapshot,
        final_snapshot=final_snapshot,
        highlights=_highlights(final_snapshot),
    )
