"""Bounded time-series recording over the metrics registry.

A :class:`TimeSeriesRecorder` is a simulation process that snapshots a
:class:`~repro.obs.registry.MetricsRegistry` every ``interval_s``
simulated seconds into a fixed-capacity ring.  That turns the registry's
point-in-time counters — including :meth:`register_array` row views —
into queryable history: windowed deltas and rates per node, group, and
link, which is what the health engine's burn-rate windows read.

Memory is bounded by design (``capacity`` samples, oldest evicted
first), matching the telemetry tiering the disaster-recovery literature
argues for: cheap always-on collection on the hot path, detailed
analysis deferred to report time.

Subscribers (``recorder.subscribe(fn)``) run synchronously after each
sample with ``(at_s, values)`` — the alert engine evaluates its rules
there, so detection latency is bounded by the sampling interval.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigError

#: called after every sample with (simulated time, collected values)
SampleHook = Callable[[float, Dict[str, float]], None]


@dataclass(frozen=True)
class RecorderConfig:
    """Sampling cadence and ring bounds."""

    #: simulated seconds between samples
    interval_s: float = 0.25
    #: ring capacity in samples (memory bound; oldest evicted first)
    capacity: int = 4096
    #: restrict sampling to one dotted-name subtree (None = everything)
    prefix: Optional[str] = None

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ConfigError(
                f"sampling interval must be positive, got {self.interval_s}"
            )
        if self.capacity < 2:
            raise ConfigError(
                f"ring needs at least 2 samples, got {self.capacity}"
            )


class TimeSeriesRecorder:
    """Samples a registry on the sim clock into a bounded ring."""

    def __init__(
        self, sim, registry, config: Optional[RecorderConfig] = None
    ) -> None:
        self.sim = sim
        self.registry = registry
        self.config = config or RecorderConfig()
        #: (at_s, {name: value}) in time order, bounded by capacity
        self.samples: Deque[Tuple[float, Dict[str, float]]] = deque(
            maxlen=self.config.capacity
        )
        self._hooks: List[SampleHook] = []
        self._stopped = False
        self._process = None

    # ------------------------------------------------------------------
    def subscribe(self, hook: SampleHook) -> None:
        """Run ``hook(at_s, values)`` after every sample."""
        self._hooks.append(hook)

    def sample_now(self) -> Dict[str, float]:
        """Take one sample immediately (also used by the loop)."""
        values = self.registry.collect(self.config.prefix)
        at = self.sim.now
        self.samples.append((at, values))
        for hook in self._hooks:
            hook(at, values)
        return values

    def start(self):
        """Spawn the sampling loop; returns the process (idempotent)."""
        if self._process is None:
            self._stopped = False
            self._process = self.sim.process(self._run())
        return self._process

    def stop(self) -> None:
        """The loop exits at its next wake-up; the ring survives."""
        self._stopped = True
        self._process = None

    def _run(self):
        while not self._stopped:
            self.sample_now()
            yield self.sim.timeout(self.config.interval_s)

    # ------------------------------------------------------------------
    @property
    def sample_count(self) -> int:
        return len(self.samples)

    def latest(self, name: str, default: float = 0.0) -> float:
        if not self.samples:
            return default
        return self.samples[-1][1].get(name, default)

    def series(self, name: str) -> List[Tuple[float, float]]:
        """(at_s, value) across the ring; missing samples read 0.0."""
        return [(at, values.get(name, 0.0)) for at, values in self.samples]

    def _window_base(
        self, window_s: float, at: float
    ) -> Optional[Tuple[float, Dict[str, float]]]:
        """The newest sample at or before ``at - window_s``.

        Falls back to the oldest held sample when the ring does not
        reach back that far (partial window at run start / after
        eviction), so early reads degrade gracefully instead of lying.
        """
        target = at - window_s
        base = None
        for sample in self.samples:
            if sample[0] > target:
                break
            base = sample
        if base is None and self.samples:
            base = self.samples[0]
        return base

    def window_delta(
        self, name: str, window_s: float, at: Optional[float] = None
    ) -> float:
        """Counter growth over the trailing window (missing reads 0.0)."""
        if window_s <= 0:
            raise ConfigError(f"window must be positive, got {window_s}")
        if not self.samples:
            return 0.0
        at_s, values = self.samples[-1]
        if at is not None:
            at_s = at
        base = self._window_base(window_s, at_s)
        if base is None or base[0] >= at_s:
            return 0.0
        return values.get(name, 0.0) - base[1].get(name, 0.0)

    def window_rate(
        self, name: str, window_s: float, at: Optional[float] = None
    ) -> float:
        """Counter growth per second over the trailing window.

        The divisor is the *actual* covered span (partial windows at run
        start divide by what the ring holds, not the nominal window).
        """
        if window_s <= 0:
            raise ConfigError(f"window must be positive, got {window_s}")
        if not self.samples:
            return 0.0
        at_s, values = self.samples[-1]
        if at is not None:
            at_s = at
        base = self._window_base(window_s, at_s)
        if base is None:
            return 0.0
        span = at_s - base[0]
        if span <= 0:
            return 0.0
        delta = values.get(name, 0.0) - base[1].get(name, 0.0)
        return delta / span

    def window_rates(
        self, prefix: str, window_s: float
    ) -> Dict[str, float]:
        """Per-counter trailing rates for one subtree (node/group/link)."""
        if not self.samples:
            return {}
        at_s, values = self.samples[-1]
        base = self._window_base(window_s, at_s)
        if base is None:
            return {}
        span = at_s - base[0]
        if span <= 0:
            return {}
        dotted = prefix + "."
        out: Dict[str, float] = {}
        for name, value in values.items():
            if name != prefix and not name.startswith(dotted):
                continue
            out[name] = (value - base[1].get(name, 0.0)) / span
        return out


__all__ = ["RecorderConfig", "SampleHook", "TimeSeriesRecorder"]
