"""The centralized network monitoring platform.

"A centralized network monitoring platform keeps collecting the real-time
network statistics from the relay groups, predicts the available bandwidth
resources of the network channels, and directs how the index data should
be delivered" (paper 2.2).

The monitor samples every backbone link's recent utilization on a fixed
interval, smooths it with an EWMA, predicts available bandwidth, and
scores candidate routes by predicted completion time for a given transfer
size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.bifrost.channels import Topology
from repro.errors import ConfigError, RoutingError
from repro.simulation.kernel import Simulator
from repro.simulation.pipes import Link


@dataclass
class LinkEstimate:
    """The monitor's current belief about one link."""

    utilization_ewma: float = 0.0
    samples: int = 0


class NetworkMonitor:
    """EWMA utilization tracking + route scoring over the backbone."""

    def __init__(
        self,
        topology: Topology,
        sample_interval_s: float = 60.0,
        ewma_alpha: float = 0.3,
        congestion_threshold: float = 0.8,
    ) -> None:
        if sample_interval_s <= 0:
            raise ConfigError("sample interval must be positive")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ConfigError("EWMA alpha must be in (0, 1]")
        if not 0.0 < congestion_threshold <= 1.0:
            raise ConfigError("congestion threshold must be in (0, 1]")
        self.topology = topology
        self.sim = topology.sim
        self.sample_interval_s = sample_interval_s
        self.ewma_alpha = ewma_alpha
        #: EWMA utilization above this reads the link as congested (the
        #: ``.congested`` gauge the health engine's warn rule watches)
        self.congestion_threshold = congestion_threshold
        self._estimates: Dict[Tuple[str, str], LinkEstimate] = {
            pair: LinkEstimate() for pair in topology.backbone
        }
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic sampling as a simulation process."""
        if not self._running:
            self._running = True
            self.sim.process(self._sampling_loop())

    def _sampling_loop(self):
        while True:
            self.sample_now()
            yield self.sim.timeout(self.sample_interval_s)

    def sample_now(self) -> None:
        """Take one utilization sample of every backbone link."""
        for pair, link in self.topology.backbone.items():
            estimate = self._estimates[pair]
            observed = link.utilization(self.sample_interval_s)
            if estimate.samples == 0:
                estimate.utilization_ewma = observed
            else:
                estimate.utilization_ewma = (
                    self.ewma_alpha * observed
                    + (1.0 - self.ewma_alpha) * estimate.utilization_ewma
                )
            estimate.samples += 1

    # ------------------------------------------------------------------
    def predicted_available_bps(self, source: str, destination: str) -> float:
        """Predicted spare bandwidth on a backbone link."""
        link = self.topology.backbone[(source, destination)]
        estimate = self._estimates[(source, destination)]
        return max(link.bandwidth_bps * (1.0 - estimate.utilization_ewma), 1.0)

    def estimate_route_time(
        self, hops: List[str], nbytes: int, stream: str
    ) -> float:
        """Predicted completion time of ``nbytes`` along ``hops``.

        Uses the reserved sub-link's live queueing delay plus the
        EWMA-predicted share of spare bandwidth for the stream.
        """
        share = self.topology.config.reservation[stream]
        total = 0.0
        for source, destination in zip(hops, hops[1:]):
            sublink = self.topology.stream_link(source, destination, stream)
            available = self.predicted_available_bps(source, destination) * share
            total += (
                sublink.queueing_delay()
                + nbytes * 8.0 / max(available, 1.0)
                + sublink.latency_s
            )
        return total

    def choose_route(
        self, destination_region: str, nbytes: int, stream: str
    ) -> List[str]:
        """The candidate route with the smallest predicted time.

        Ties favour the direct route (fewer hops, fewer failure points).
        Routes crossing a partitioned backbone hop are excluded — the
        relay-failover path: a region whose preferred (direct) relay link
        is blackholed gets its slices through a surviving relay group
        instead.  If *every* candidate is partitioned the region is
        unreachable right now and :class:`RoutingError` is raised; the
        transport backs off and retries until the partition heals or its
        reroute budget runs out.
        """
        best_hops: List[str] | None = None
        best_time = float("inf")
        for hops in self.topology.routes(destination_region):
            if self.topology.route_partitioned(hops):
                continue
            predicted = self.estimate_route_time(hops, nbytes, stream)
            if predicted < best_time - 1e-12:
                best_hops, best_time = hops, predicted
        if best_hops is None:
            raise RoutingError(
                f"all routes to {destination_region!r} are partitioned"
            )
        return best_hops

    def snapshot(self) -> Dict[Tuple[str, str], float]:
        """Current EWMA utilization per backbone link."""
        return {
            pair: estimate.utilization_ewma
            for pair, estimate in self._estimates.items()
        }

    def register_metrics(self, registry) -> None:
        """Register the per-link EWMA beliefs as live gauges.

        ``bifrost.monitor.<src>-<dst>.utilization_ewma`` is the smoothed
        utilization steering route choice; ``.samples`` counts how many
        sampling-loop ticks have fed it; ``.congested`` is the
        thresholded health view (EWMA above
        :attr:`congestion_threshold`).
        """
        for (source, destination), estimate in self._estimates.items():
            registry.register_many(
                f"bifrost.monitor.{source}-{destination}",
                {
                    "utilization_ewma": (
                        lambda e=estimate: e.utilization_ewma
                    ),
                    "samples": lambda e=estimate: e.samples,
                    "congested": lambda e=estimate: (
                        1.0
                        if e.utilization_ewma > self.congestion_threshold
                        else 0.0
                    ),
                },
            )
