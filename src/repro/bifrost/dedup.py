"""Inter-version deduplication of index entries.

"Only if the signature differs, a key-value pair is forwarded to the
network transmission, otherwise the value field will be removed before
delivery" (paper 2.2).  The deduplicator holds the previous version's
signature per key; an unchanged entry is forwarded value-less and the
destination store resolves it by traceback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.bifrost.signature import signature
from repro.indexing.types import IndexDataset, IndexEntry, IndexKind


@dataclass
class DedupResult:
    """The deduplicated dataset plus the savings accounting."""

    dataset: IndexDataset
    total_entries: int
    deduplicated_entries: int
    bytes_before: int
    bytes_after: int
    #: entries whose build-time signature spared a re-hash of the value
    hashes_avoided: int = 0

    @property
    def dedup_ratio(self) -> float:
        """Fraction of entries whose value was removed."""
        if self.total_entries == 0:
            return 0.0
        return self.deduplicated_entries / self.total_entries

    @property
    def bytes_saved(self) -> int:
        return self.bytes_before - self.bytes_after

    @property
    def bandwidth_saving_ratio(self) -> float:
        """Fraction of wire bytes removed (the paper's 63%)."""
        if self.bytes_before == 0:
            return 0.0
        return self.bytes_saved / self.bytes_before


class Deduplicator:
    """Stateful per-key signature store spanning consecutive versions."""

    def __init__(self) -> None:
        self._signatures: Dict[Tuple[IndexKind, bytes], bytes] = {}
        #: lifetime count of re-hashes the build-time signatures spared
        self.hashes_avoided = 0

    @property
    def tracked_keys(self) -> int:
        return len(self._signatures)

    def process(self, dataset: IndexDataset) -> DedupResult:
        """Strip values that are identical to the previous version's.

        Updates the signature store to the current version as it goes, so
        calling ``process`` version after version compares each version
        against its immediate predecessor.

        An entry carrying a build-time signature (the index pipeline
        computes one per value) is compared without re-hashing its value;
        only signature-less entries pay :func:`signature` here.
        """
        output = IndexDataset(version=dataset.version)
        total = 0
        deduplicated = 0
        bytes_before = 0
        bytes_after = 0
        hashes_avoided = 0
        for kind in IndexKind:
            for entry in dataset.of_kind(kind):
                if entry.value is None:
                    raise ValueError(
                        "deduplicator input must carry values "
                        f"(key {entry.key!r} has none)"
                    )
                total += 1
                bytes_before += entry.wire_bytes
                store_key = (kind, entry.key)
                if entry.signature is not None:
                    current_signature = entry.signature
                    hashes_avoided += 1
                else:
                    current_signature = signature(entry.value)
                if self._signatures.get(store_key) == current_signature:
                    stripped = entry.deduplicated()
                    output.add(stripped)
                    deduplicated += 1
                    bytes_after += stripped.wire_bytes
                else:
                    output.add(entry)
                    bytes_after += entry.wire_bytes
                self._signatures[store_key] = current_signature
        self.hashes_avoided += hashes_avoided
        return DedupResult(
            dataset=output,
            total_entries=total,
            deduplicated_entries=deduplicated,
            bytes_before=bytes_before,
            bytes_after=bytes_after,
            hashes_avoided=hashes_avoided,
        )
