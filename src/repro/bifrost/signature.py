"""Value signatures and slice checksums.

Deduplication compares *signatures* of index values between consecutive
versions (paper 2.2) — a keyed 16-byte BLAKE2b digest here, collision
probability negligible at web scale.  Slice integrity in transit uses
CRC32, recomputed at every relay hop (paper Section 3).
"""

from __future__ import annotations

import hashlib
import zlib

SIGNATURE_BYTES = 16


def signature(value: bytes) -> bytes:
    """16-byte content signature used for inter-version deduplication."""
    return hashlib.blake2b(value, digest_size=SIGNATURE_BYTES).digest()


def checksum(payload: bytes) -> int:
    """CRC32 integrity checksum carried alongside each slice."""
    return zlib.crc32(payload) & 0xFFFFFFFF
