"""Wire encoding: what dedup doesn't catch, delta + compression does.

Whole-value signature dedup (paper 2.2) removes *unchanged* values from
the wire, but a changed value still ships in full even when the change
touched a few of its term blocks.  This layer sits between the slicer
and the scheduler and rewrites each slice's payload for transmission:

* **delta vs predecessor** — a changed value is encoded as copy/literal
  ops against the predecessor version's value for the same key,
  identified by the predecessor's *signature* (so the receiver applies
  the delta only against provably identical base bytes);
* **varint packing** — per-entry headers, op lengths, and offsets are
  LEB128 varints instead of fixed-width struct fields;
* **group compression** — the packed stream is DEFLATE-compressed as one
  unit, catching the redundancy *across* a slice's entries that
  per-value encoding cannot see.

The :class:`~repro.bifrost.slices.Slice` keeps its logical ``payload``
(what ingestion must reproduce byte-for-byte) and gains ``wire`` — the
compressed stream that actually travels.  All transport byte accounting
(transmit delays, ``bytes_sent``, the monitor's congestion model) runs
on wire bytes; the receiving cluster decodes at ingest and the delivered
entries are byte-identical to the unencoded run.

Decode keeps a per-receiver base cache keyed by value signature, so
out-of-order arrival across versions (pipelined months) is safe: a delta
whose base has not landed yet raises
:class:`~repro.errors.WireBaseUnavailableError` and the cluster parks
the slice until the base decodes.

Encode/decode CPU is not simulated as kernel time (the encode happens in
the build DC's generation window, which already models the build cost);
instead both sides charge a deterministic modeled CPU account
(``encode_cpu_s`` / ``decode_cpu_s``) that the bandwidth bench reports
next to the bytes saved.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bifrost.signature import SIGNATURE_BYTES, checksum, signature
from repro.errors import WireBaseUnavailableError, WireCodecError
from repro.indexing.types import IndexEntry, IndexKind

#: per-entry wire modes
MODE_UNCHANGED = 0  # deduplicated marker: no value travels
MODE_FULL = 1  # full value (no usable base, or delta would not pay)
MODE_DELTA = 2  # copy/literal ops against a signature-matched base

#: anchor granularity for the delta matcher — matches the 64-byte term
#: blocks the synthetic builders compose values from
DELTA_BLOCK_BYTES = 64

#: modeled single-core codec throughputs (bytes/second) for the CPU
#: charge accounting; deterministic, so bench entries are reproducible
ENCODE_BYTES_PER_S = 400e6
DECODE_BYTES_PER_S = 1.2e9


# ----------------------------------------------------------------------
# varints
def append_varint(buf: bytearray, value: int) -> None:
    """LEB128-append a non-negative integer."""
    while value > 0x7F:
        buf.append((value & 0x7F) | 0x80)
        value >>= 7
    buf.append(value)


def read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    """Read a LEB128 varint; returns ``(value, next_pos)``."""
    result = 0
    shift = 0
    try:
        while True:
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result, pos
            shift += 7
    except IndexError:
        raise WireCodecError("varint runs past the end of the stream")


# ----------------------------------------------------------------------
# delta ops
def delta_encode(
    base: bytes, new: bytes, block: int = DELTA_BLOCK_BYTES
) -> Optional[bytes]:
    """Copy/literal ops turning ``base`` into ``new``, or None.

    Block-anchored matching: base blocks index by content, the new value
    scans block-aligned, and every anchor hit extends byte-wise — the
    right shape for values whose edits replace aligned sub-blocks (the
    corpus builders' 64-byte term blocks).  Returns None when the ops
    stream would not be smaller than the value itself (the caller ships
    the full value instead).
    """
    if not base or not new:
        return None
    anchors: Dict[bytes, int] = {}
    offset = 0
    limit = len(base) - block
    while offset <= limit:
        chunk = base[offset : offset + block]
        if chunk not in anchors:
            anchors[chunk] = offset
        offset += block
    ops = bytearray()
    base_len = len(base)
    new_len = len(new)
    position = 0
    literal_start = 0
    while position + block <= new_len:
        match_at = anchors.get(new[position : position + block])
        if match_at is None:
            position += block
            continue
        length = block
        while (
            position + length < new_len
            and match_at + length < base_len
            and new[position + length] == base[match_at + length]
        ):
            length += 1
        if position > literal_start:
            literal = new[literal_start:position]
            append_varint(ops, (len(literal) << 1) | 1)
            ops += literal
        append_varint(ops, length << 1)  # copy op, tag bit 0
        append_varint(ops, match_at)
        position += length
        literal_start = position
        if len(ops) >= new_len:
            return None
    if literal_start < new_len:
        literal = new[literal_start:]
        append_varint(ops, (len(literal) << 1) | 1)
        ops += literal
    if len(ops) >= new_len:
        return None
    return bytes(ops)


def delta_apply(base: bytes, ops: bytes) -> bytes:
    """Replay a :func:`delta_encode` ops stream against its base."""
    out = bytearray()
    pos = 0
    end = len(ops)
    while pos < end:
        header, pos = read_varint(ops, pos)
        length = header >> 1
        if header & 1:
            out += ops[pos : pos + length]
            pos += length
        else:
            offset, pos = read_varint(ops, pos)
            if offset + length > len(base):
                raise WireCodecError(
                    f"delta copy op [{offset}, {offset + length}) exceeds "
                    f"base of {len(base)} bytes"
                )
            out += base[offset : offset + length]
    return bytes(out)


# ----------------------------------------------------------------------
@dataclass
class WireStats:
    """Origin-side accounting for one encoder's lifetime."""

    slices_encoded: int = 0
    entries_unchanged: int = 0
    entries_full: int = 0
    entries_delta: int = 0
    payload_bytes: int = 0  # logical serialized payload
    wire_bytes: int = 0  # compressed stream that travels
    #: modeled codec CPU charge (see module docstring)
    encode_cpu_s: float = 0.0

    @property
    def bytes_saved(self) -> int:
        return self.payload_bytes - self.wire_bytes

    @property
    def compression_ratio(self) -> float:
        """wire / payload — lower is better (1.0 = no saving)."""
        if self.payload_bytes == 0:
            return 1.0
        return self.wire_bytes / self.payload_bytes


class WireEncoder:
    """Build-DC side: rewrites packed slices into the wire encoding.

    Holds the last-shipped ``(signature, value)`` per ``(kind, key)`` —
    the same predecessor knowledge the deduplicator keeps, extended with
    the value bytes so changed values can delta against them.
    """

    def __init__(
        self,
        delta_enabled: bool = True,
        compress_level: int = 6,
        block_bytes: int = DELTA_BLOCK_BYTES,
    ) -> None:
        if not 1 <= compress_level <= 9:
            raise WireCodecError(
                f"compress_level must be in [1, 9], got {compress_level}"
            )
        if block_bytes < 16:
            raise WireCodecError("block_bytes must be >= 16")
        self.delta_enabled = delta_enabled
        self.compress_level = compress_level
        self.block_bytes = block_bytes
        self.stats = WireStats()
        self._bases: Dict[Tuple[IndexKind, bytes], Tuple[bytes, bytes]] = {}

    @property
    def tracked_keys(self) -> int:
        return len(self._bases)

    def encode_slice(self, item) -> None:
        """Attach the compressed wire stream to a packed slice.

        The slice keeps its logical payload (and entries); ``wire`` holds
        what travels, and the CRC is recomputed over the wire bytes —
        relays verify what they actually carried.
        """
        kind = item.kind
        buf = bytearray()
        append_varint(buf, len(item.entries))
        bases = self._bases
        unchanged = full = delta = 0
        for entry in item.entries:
            key = entry.key
            append_varint(buf, len(key))
            buf += key
            value = entry.value
            if value is None:
                buf.append(MODE_UNCHANGED)
                unchanged += 1
                continue
            sig = entry.signature
            if sig is None:
                sig = signature(value)
            base = bases.get((kind, key)) if self.delta_enabled else None
            ops = None
            if base is not None:
                ops = delta_encode(base[1], value, self.block_bytes)
            if ops is None:
                buf.append(MODE_FULL)
                buf += sig
                append_varint(buf, len(value))
                buf += value
                full += 1
            else:
                buf.append(MODE_DELTA)
                buf += sig
                buf += base[0]
                append_varint(buf, len(ops))
                buf += ops
                delta += 1
            bases[(kind, key)] = (sig, value)
        wire = zlib.compress(bytes(buf), self.compress_level)
        item.wire = wire
        item.crc = checksum(wire)
        stats = self.stats
        stats.slices_encoded += 1
        stats.entries_unchanged += unchanged
        stats.entries_full += full
        stats.entries_delta += delta
        stats.payload_bytes += len(item.payload)
        stats.wire_bytes += len(wire)
        stats.encode_cpu_s += (
            len(item.payload) + len(buf)
        ) / ENCODE_BYTES_PER_S

    def encode_slices(self, slices: List) -> None:
        for item in slices:
            self.encode_slice(item)

    def register_metrics(self, registry) -> None:
        """``bifrost.encoding.*``: the origin-side codec counters."""
        stats = self.stats
        registry.register_many(
            "bifrost.encoding",
            {
                "slices": lambda: stats.slices_encoded,
                "entries_full": lambda: stats.entries_full,
                "entries_delta": lambda: stats.entries_delta,
                "payload_bytes": lambda: stats.payload_bytes,
                "wire_bytes": lambda: stats.wire_bytes,
                "bytes_saved": lambda: stats.bytes_saved,
                "encode_cpu_s": lambda: stats.encode_cpu_s,
            },
        )


# ----------------------------------------------------------------------
@dataclass
class DecodeStats:
    """Receiver-side accounting for one decoder's lifetime."""

    slices_decoded: int = 0
    entries_decoded: int = 0
    deltas_applied: int = 0
    full_values: int = 0
    #: decode attempts that hit a not-yet-arrived delta base
    bases_missing: int = 0
    decode_cpu_s: float = 0.0


class WireDecoder:
    """One per receiving cluster: wire stream back to logical entries.

    Keeps every live decoded value per ``(kind, key)`` keyed by its
    signature, so a delta arriving out of version order still finds its
    exact base (or parks — never applies against wrong bytes).  Entries
    for dropped versions are pruned, except each key's newest value,
    which stays the delta base for keys unchanged since.
    """

    def __init__(self) -> None:
        self.stats = DecodeStats()
        #: (kind, key) -> [(version, signature, value), ...]
        self._values: Dict[
            Tuple[IndexKind, bytes], List[Tuple[int, bytes, bytes]]
        ] = {}

    @property
    def tracked_keys(self) -> int:
        return len(self._values)

    def decode_slice(self, item) -> List[IndexEntry]:
        """The slice's logical entries, byte-identical to the origin's.

        Verifies the wire CRC first (corruption that slipped past the
        relays is caught before, not after, decompression), decodes the
        whole stream, and only then commits the new values to the base
        cache — a mid-slice missing base leaves the decoder untouched so
        the parked slice can retry cleanly.
        """
        item.verify()
        if item.wire is None:
            raise WireCodecError(
                f"slice {item.slice_id} has no wire stream to decode"
            )
        try:
            raw = zlib.decompress(item.wire)
        except zlib.error as exc:
            raise WireCodecError(
                f"slice {item.slice_id} failed to decompress: {exc}"
            )
        kind = item.kind
        version = item.version
        values = self._values
        entries: List[IndexEntry] = []
        commits: List[Tuple[bytes, bytes, bytes]] = []
        count, pos = read_varint(raw, 0)
        deltas = fulls = 0
        for _ in range(count):
            key_len, pos = read_varint(raw, pos)
            key = raw[pos : pos + key_len]
            pos += key_len
            mode = raw[pos]
            pos += 1
            if mode == MODE_UNCHANGED:
                entries.append(IndexEntry(kind, key, None))
                continue
            sig = raw[pos : pos + SIGNATURE_BYTES]
            pos += SIGNATURE_BYTES
            if mode == MODE_FULL:
                value_len, pos = read_varint(raw, pos)
                value = raw[pos : pos + value_len]
                pos += value_len
                fulls += 1
            elif mode == MODE_DELTA:
                base_sig = raw[pos : pos + SIGNATURE_BYTES]
                pos += SIGNATURE_BYTES
                ops_len, pos = read_varint(raw, pos)
                ops = raw[pos : pos + ops_len]
                pos += ops_len
                base_value = self._find_base(kind, key, base_sig)
                if base_value is None:
                    self.stats.bases_missing += 1
                    raise WireBaseUnavailableError(
                        f"slice {item.slice_id}: no decoded base with the "
                        f"referenced signature for key {key!r}"
                    )
                value = delta_apply(base_value, ops)
                deltas += 1
            else:
                raise WireCodecError(
                    f"slice {item.slice_id}: unknown entry mode {mode}"
                )
            entries.append(IndexEntry(kind, key, value, signature=sig))
            commits.append((key, sig, value))
        if pos != len(raw):
            raise WireCodecError(
                f"slice {item.slice_id}: {len(raw) - pos} trailing bytes "
                "after the last entry"
            )
        for key, sig, value in commits:
            values.setdefault((kind, key), []).append((version, sig, value))
        stats = self.stats
        stats.slices_decoded += 1
        stats.entries_decoded += len(entries)
        stats.deltas_applied += deltas
        stats.full_values += fulls
        stats.decode_cpu_s += (
            len(item.wire) + len(raw)
        ) / DECODE_BYTES_PER_S
        return entries

    def _find_base(
        self, kind: IndexKind, key: bytes, base_sig: bytes
    ) -> Optional[bytes]:
        candidates = self._values.get((kind, key))
        if not candidates:
            return None
        for _version, sig, value in candidates:
            if sig == base_sig:
                return value
        return None

    def release_version(self, version: int) -> None:
        """Prune cache entries of a dropped version.

        Each key's newest value always survives — a key unchanged for
        many versions still deltas against the last value that shipped,
        however old the version that carried it.
        """
        for cache_key, candidates in self._values.items():
            if len(candidates) < 2:
                continue
            if not any(item[0] == version for item in candidates):
                continue
            newest = max(candidates, key=lambda item: item[0])
            self._values[cache_key] = [
                item
                for item in candidates
                if item[0] != version or item is newest
            ]


__all__ = [
    "DELTA_BLOCK_BYTES",
    "DecodeStats",
    "MODE_DELTA",
    "MODE_FULL",
    "MODE_UNCHANGED",
    "WireDecoder",
    "WireEncoder",
    "WireStats",
    "append_varint",
    "delta_apply",
    "delta_encode",
    "read_varint",
]
