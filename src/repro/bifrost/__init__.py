"""Bifrost: versioned index delivery to regional data centers.

The delivery pipeline (paper Section 2.2):

1. :class:`Deduplicator` compares every entry's value signature against
   the previous version and strips unchanged values — only the key (and
   version) travels, cutting up to 63% of the bandwidth;
2. the :class:`Slicer` packs entries into checksummed slices;
3. the :class:`StreamScheduler` spreads slices of each stream over the
   generation window, and each backbone link reserves 40% of its
   bandwidth for summary slices and 60% for inverted+forward slices;
4. :class:`BifrostTransport` moves slices through the regional relay
   groups over a discrete-event network, re-verifying checksums at every
   hop, retransmitting corrupted slices, re-routing around congested
   backbone channels using the :class:`NetworkMonitor`'s bandwidth
   predictions, and recording arrival times for the miss-ratio SLO.
"""

from repro.bifrost.channels import Topology, TopologyConfig, build_topology
from repro.bifrost.dedup import Deduplicator, DedupResult
from repro.bifrost.monitor import NetworkMonitor
from repro.bifrost.scheduler import StreamScheduler
from repro.bifrost.signature import checksum, signature
from repro.bifrost.slices import Slice, Slicer
from repro.bifrost.transport import BifrostTransport, DeliveryReport, TransportConfig

__all__ = [
    "BifrostTransport",
    "DedupResult",
    "Deduplicator",
    "DeliveryReport",
    "NetworkMonitor",
    "Slice",
    "Slicer",
    "StreamScheduler",
    "Topology",
    "TopologyConfig",
    "TransportConfig",
    "build_topology",
    "checksum",
    "signature",
]
