"""Chunk-level delta deduplication — the finer-grained extension.

The paper's deduplicator is all-or-nothing: a value that changed by one
term ships in full.  Its related-work section points at rsync and delta
compression [51, 52] as the finer alternative.  This module implements
it: values are split with **content-defined chunking** (a Gear rolling
hash, as in modern dedup systems), and only chunks the destination has
not seen travel the wire; unchanged chunks are referenced by signature.

Content-defined boundaries make the chunking insertion-stable: editing
the middle of a document only changes the chunks it touches, so a
partially modified value still deduplicates most of its bytes — the case
where whole-value dedup saves nothing.

Wire format of a delta-encoded value: a *recipe* (ordered chunk
signatures) plus the payload bytes of chunks the receiver lacks.  The
receiving store keeps a chunk store keyed by signature and reassembles
values on arrival, so the storage layer (QinDB/Mint) is untouched.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.bifrost.signature import SIGNATURE_BYTES, signature
from repro.bifrost.slices import INDEX_TO_KIND, KIND_TO_INDEX
from repro.errors import ConfigError, CorruptionError
from repro.indexing.types import IndexDataset, IndexEntry, IndexKind

# 256 pseudo-random 64-bit gear values, generated deterministically.
_GEAR: List[int] = []
_state = 0x9E3779B97F4A7C15
for _ in range(256):
    _state = (_state * 6364136223846793005 + 1442695040888963407) & (2**64 - 1)
    _GEAR.append(_state)

_MASK_64 = 2**64 - 1


def chunk_boundaries(
    data: bytes, average_bytes: int = 512, min_bytes: int = 64, max_bytes: int = 4096
) -> Iterator[Tuple[int, int]]:
    """Yield (start, end) of content-defined chunks covering ``data``.

    A boundary is declared where the Gear rolling hash has its top
    ``log2(average_bytes)`` bits zero, giving chunks of ~``average_bytes``
    on random input, clamped to [min_bytes, max_bytes].
    """
    if min_bytes < 1 or not min_bytes <= average_bytes <= max_bytes:
        raise ConfigError(
            f"need 1 <= min <= average <= max, got "
            f"{min_bytes}/{average_bytes}/{max_bytes}"
        )
    mask = (average_bytes - 1) << (64 - average_bytes.bit_length() + 1)
    start = 0
    length = len(data)
    while start < length:
        end = min(start + max_bytes, length)
        cut = end
        hash_value = 0
        position = start
        for position in range(start, end):
            hash_value = ((hash_value << 1) + _GEAR[data[position]]) & _MASK_64
            if position - start + 1 >= min_bytes and (hash_value & mask) == 0:
                cut = position + 1
                break
        yield (start, cut)
        start = cut


def chunk_value(data: bytes, average_bytes: int = 512) -> List[bytes]:
    """Split ``data`` into content-defined chunks."""
    return [data[s:e] for s, e in chunk_boundaries(data, average_bytes)]


@dataclass
class DeltaEncodedValue:
    """A value expressed as a chunk recipe plus the missing chunk bytes."""

    #: ordered signatures reconstructing the value
    recipe: List[bytes]
    #: signature -> payload for chunks the receiver did not have
    new_chunks: Dict[bytes, bytes]

    @property
    def wire_bytes(self) -> int:
        """Bytes this encoding puts on the network."""
        payload = sum(len(chunk) for chunk in self.new_chunks.values())
        return len(self.recipe) * SIGNATURE_BYTES + payload + 8


@dataclass
class ChunkDedupResult:
    """Savings accounting for one dataset pass."""

    dataset: IndexDataset
    encodings: Dict[Tuple[IndexKind, bytes], DeltaEncodedValue]
    total_entries: int = 0
    unchanged_entries: int = 0
    bytes_before: int = 0
    bytes_after: int = 0

    @property
    def bandwidth_saving_ratio(self) -> float:
        if self.bytes_before == 0:
            return 0.0
        return (self.bytes_before - self.bytes_after) / self.bytes_before


class ChunkedDeduplicator:
    """Sender side: tracks which chunk signatures the receivers hold."""

    def __init__(self, average_chunk_bytes: int = 512) -> None:
        self.average_chunk_bytes = average_chunk_bytes
        self._known_signatures: set[bytes] = set()
        #: per-key whole-value signature, to short-circuit unchanged values
        self._value_signatures: Dict[Tuple[IndexKind, bytes], bytes] = {}

    @property
    def tracked_chunks(self) -> int:
        return len(self._known_signatures)

    def process(self, dataset: IndexDataset) -> ChunkDedupResult:
        """Delta-encode every entry against the chunks already shipped.

        Unchanged values are forwarded value-less (exactly the paper's
        whole-value dedup); changed values ship a recipe plus only their
        novel chunks.
        """
        result = ChunkDedupResult(
            dataset=IndexDataset(version=dataset.version), encodings={}
        )
        for kind in IndexKind:
            self.process_entries(dataset.of_kind(kind), result)
        return result

    def process_entries(self, entries, result: ChunkDedupResult) -> None:
        """Stream ``entries`` through the deduplicator into ``result``.

        The streaming form of :meth:`process`: callers iterate entries
        straight out of the source dataset (no per-kind ``IndexDataset``
        copy) and accumulate into one shared result across kinds.
        Deduplicated output lands in ``result.dataset``; precomputed
        entry signatures (``entry.signature``) are honoured.
        """
        output = result.dataset
        for entry in entries:
            if entry.value is None:
                raise ConfigError("chunked dedup input must carry values")
            result.total_entries += 1
            result.bytes_before += entry.wire_bytes
            store_key = (entry.kind, entry.key)
            value_signature = entry.signature or signature(entry.value)
            if self._value_signatures.get(store_key) == value_signature:
                stripped = entry.deduplicated()
                output.add(stripped)
                result.unchanged_entries += 1
                result.bytes_after += stripped.wire_bytes
                continue
            self._value_signatures[store_key] = value_signature

            recipe: List[bytes] = []
            new_chunks: Dict[bytes, bytes] = {}
            for chunk in chunk_value(entry.value, self.average_chunk_bytes):
                chunk_signature = signature(chunk)
                recipe.append(chunk_signature)
                if chunk_signature not in self._known_signatures:
                    new_chunks[chunk_signature] = chunk
                    self._known_signatures.add(chunk_signature)
            encoding = DeltaEncodedValue(recipe=recipe, new_chunks=new_chunks)
            result.encodings[store_key] = encoding
            output.add(entry)  # the full entry still rides locally...
            # ...but the wire carries only the delta encoding.
            result.bytes_after += len(entry.key) + encoding.wire_bytes


class ChunkStore:
    """Receiver side: signature -> chunk bytes, with reassembly.

    Chunks are reference-counted by the recipes that use them, so a
    destination can release a dropped version's recipes and reclaim the
    chunks no surviving version references.
    """

    def __init__(self) -> None:
        self._chunks: Dict[bytes, bytes] = {}
        self._refs: Dict[bytes, int] = {}

    def __len__(self) -> int:
        return len(self._chunks)

    @property
    def stored_bytes(self) -> int:
        return sum(len(chunk) for chunk in self._chunks.values())

    def absorb(self, encoding: DeltaEncodedValue) -> bytes:
        """Store the encoding's new chunks and reassemble the value.

        Every signature in the recipe takes a reference, keeping its
        chunk alive until :meth:`release` drops the recipe.
        """
        for chunk_signature, chunk in encoding.new_chunks.items():
            if signature(chunk) != chunk_signature:
                raise CorruptionError("chunk payload does not match signature")
            self._chunks[chunk_signature] = chunk
        try:
            parts = [
                self._chunks[chunk_signature]
                for chunk_signature in encoding.recipe
            ]
        except KeyError as missing:
            raise CorruptionError(
                f"recipe references unknown chunk {missing}"
            ) from None
        for chunk_signature in encoding.recipe:
            self._refs[chunk_signature] = self._refs.get(chunk_signature, 0) + 1
        return b"".join(parts)

    def release(self, recipe: List[bytes]) -> int:
        """Drop one recipe's references; returns chunks reclaimed."""
        reclaimed = 0
        for chunk_signature in recipe:
            remaining = self._refs.get(chunk_signature, 0) - 1
            if remaining > 0:
                self._refs[chunk_signature] = remaining
            else:
                self._refs.pop(chunk_signature, None)
                if self._chunks.pop(chunk_signature, None) is not None:
                    reclaimed += 1
        return reclaimed


# ----------------------------------------------------------------------
# Wire format for delta-encoded slices
# ----------------------------------------------------------------------

_DELTA_ENTRY = struct.Struct("<HBBLL")  # key_len, kind, mode, recipe_n, new_n
_DELTA_CHUNK = struct.Struct("<L")  # chunk byte length
_MODE_UNCHANGED = 0
_MODE_DELTA = 1


def serialize_delta_entries(
    entries: List[IndexEntry],
    encodings: Dict[Tuple[IndexKind, bytes], DeltaEncodedValue],
) -> bytes:
    """Encode a slice's entries as the delta wire stream.

    An entry with ``value is None`` ships as an *unchanged* marker; an
    entry with a value must have a matching encoding and ships as its
    recipe plus novel chunks.
    """
    kind_index = KIND_TO_INDEX
    parts: List[bytes] = []
    for entry in entries:
        if entry.value is None:
            parts.append(
                _DELTA_ENTRY.pack(
                    len(entry.key), kind_index[entry.kind], _MODE_UNCHANGED, 0, 0
                )
            )
            parts.append(entry.key)
            continue
        encoding = encodings[(entry.kind, entry.key)]
        parts.append(
            _DELTA_ENTRY.pack(
                len(entry.key),
                kind_index[entry.kind],
                _MODE_DELTA,
                len(encoding.recipe),
                len(encoding.new_chunks),
            )
        )
        parts.append(entry.key)
        parts.extend(encoding.recipe)
        for chunk_signature, chunk in encoding.new_chunks.items():
            parts.append(chunk_signature)
            parts.append(_DELTA_CHUNK.pack(len(chunk)))
            parts.append(chunk)
    return b"".join(parts)


def deserialize_delta_entries(
    payload: bytes,
) -> Iterator[Tuple[IndexKind, bytes, Optional["DeltaEncodedValue"]]]:
    """Decode the delta wire stream: (kind, key, encoding-or-None)."""
    kinds = INDEX_TO_KIND
    offset = 0
    while offset < len(payload):
        key_len, kind_index, mode, recipe_count, new_count = (
            _DELTA_ENTRY.unpack_from(payload, offset)
        )
        offset += _DELTA_ENTRY.size
        key = bytes(payload[offset : offset + key_len])
        offset += key_len
        if mode == _MODE_UNCHANGED:
            yield kinds[kind_index], key, None
            continue
        recipe = []
        for _ in range(recipe_count):
            recipe.append(bytes(payload[offset : offset + SIGNATURE_BYTES]))
            offset += SIGNATURE_BYTES
        new_chunks: Dict[bytes, bytes] = {}
        for _ in range(new_count):
            chunk_signature = bytes(payload[offset : offset + SIGNATURE_BYTES])
            offset += SIGNATURE_BYTES
            (chunk_len,) = _DELTA_CHUNK.unpack_from(payload, offset)
            offset += _DELTA_CHUNK.size
            new_chunks[chunk_signature] = bytes(
                payload[offset : offset + chunk_len]
            )
            offset += chunk_len
        yield kinds[kind_index], key, DeltaEncodedValue(recipe, new_chunks)
