"""Stream scheduling: keep all index streams moving together.

"Bifrost must ensure that individual data streams ... arrive at all data
centers simultaneously" (paper 2.2): intermediate nodes have no room to
buffer a stalled stream, and the relay nodes' shared resource manager
revokes bandwidth from streams that go idle.

The scheduler spreads each stream's slices uniformly across the version's
generation window, so the summary stream and the inverted stream start
together, stay busy together, and finish together.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.bifrost.channels import stream_of
from repro.bifrost.slices import Slice
from repro.errors import ConfigError


class StreamScheduler:
    """Assigns each slice an availability time within the window."""

    def __init__(self, generation_window_s: float) -> None:
        if generation_window_s < 0:
            raise ConfigError(
                f"generation window must be >= 0, got {generation_window_s}"
            )
        self.generation_window_s = generation_window_s

    def schedule(self, slices: List[Slice], start_time: float = 0.0) -> List[Slice]:
        """Set ``available_at`` on every slice; returns them sorted by it.

        Slices of one stream are spaced evenly over the window, emulating
        continuous index generation; different streams interleave.
        """
        by_stream: Dict[str, List[Slice]] = defaultdict(list)
        for item in slices:
            by_stream[stream_of(item.kind)].append(item)
        for stream_slices in by_stream.values():
            count = len(stream_slices)
            for position, item in enumerate(stream_slices):
                if count == 1:
                    item.available_at = start_time
                else:
                    item.available_at = start_time + (
                        self.generation_window_s * position / (count - 1)
                    )
        return sorted(slices, key=lambda s: (s.available_at, s.slice_id))
