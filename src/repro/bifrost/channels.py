"""Network topology: the build DC, three regions, six data centers.

Mirrors the paper's deployment: data center #0 builds indices; three
regional relay groups (North, East, South China) each serve two data
centers.  Backbone links connect the origin to every region and every
pair of regions (re-routing through a third region is possible); intra-
region links connect a relay group to its data centers.

Every backbone link is split into *reserved* sub-links: 40% of bandwidth
for summary-index slices, 60% for inverted(+forward) slices — the paper's
empirical reservation that keeps both streams moving so the relay nodes'
general-purpose resource manager never revokes an idle allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigError, RoutingError
from repro.indexing.types import IndexKind
from repro.simulation.kernel import Simulator
from repro.simulation.pipes import Link
from repro.simulation.resources import Resource

ORIGIN = "origin"

#: stream names for the bandwidth reservation
SUMMARY_STREAM = "summary"
INVERTED_STREAM = "inverted"

DEFAULT_RESERVATION = {SUMMARY_STREAM: 0.4, INVERTED_STREAM: 0.6}


def stream_of(kind: IndexKind) -> str:
    """Which reserved stream carries entries of this kind.

    Forward indices travel combined with inverted indices (the paper's
    blue arrows), so both share the 60% reservation.
    """
    return SUMMARY_STREAM if kind is IndexKind.SUMMARY else INVERTED_STREAM


@dataclass(frozen=True)
class TopologyConfig:
    """Bandwidths, latencies, and fan-out of the delivery network."""

    regions: Tuple[str, ...] = ("north", "east", "south")
    dcs_per_region: int = 2
    #: one data center per region also stores summary indices
    summary_dcs_per_region: int = 1
    backbone_bps: float = 1e9  # 1 Gbps, the paper's testbed NICs
    intra_bps: float = 10e9
    backbone_latency_s: float = 0.02
    intra_latency_s: float = 0.002
    relay_nodes_per_group: int = 24  # paper: 20-30 per relay group
    stat_bucket_s: float = 60.0
    reservation: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_RESERVATION)
    )

    def __post_init__(self) -> None:
        if len(self.regions) < 1:
            raise ConfigError("need at least one region")
        if self.dcs_per_region < 1:
            raise ConfigError("need at least one data center per region")
        if self.summary_dcs_per_region > self.dcs_per_region:
            raise ConfigError("more summary DCs than DCs in a region")
        if min(self.backbone_bps, self.intra_bps) <= 0:
            raise ConfigError("bandwidths must be positive")


class Topology:
    """Links between the origin, regions, and data centers."""

    def __init__(self, sim: Simulator, config: TopologyConfig) -> None:
        self.sim = sim
        self.config = config
        self.regions: List[str] = list(config.regions)
        self.data_centers: Dict[str, List[str]] = {}
        self.summary_dcs: Dict[str, List[str]] = {}
        #: physical backbone links, (src, dst) -> Link
        self.backbone: Dict[Tuple[str, str], Link] = {}
        #: reserved stream sub-links per backbone link
        self.streams: Dict[Tuple[str, str], Dict[str, Link]] = {}
        #: intra-region links, (region, dc) -> Link
        self.intra: Dict[Tuple[str, str], Link] = {}
        #: per-region relay work slots: the paper's 20-30 relay nodes
        #: caching and forwarding; a slice holds one slot while its relay
        #: group processes it, so a small group serializes heavy bursts
        self.relay_slots: Dict[str, Resource] = {}
        self._build()

    def _build(self) -> None:
        config = self.config
        endpoints = [ORIGIN] + self.regions
        for source in endpoints:
            for destination in endpoints:
                if source == destination:
                    continue
                link = Link(
                    self.sim,
                    config.backbone_bps,
                    config.backbone_latency_s,
                    name=f"{source}->{destination}",
                    stat_bucket_s=config.stat_bucket_s,
                )
                self.backbone[(source, destination)] = link
                self.streams[(source, destination)] = link.reserve(
                    config.reservation
                )
        for region in self.regions:
            self.relay_slots[region] = Resource(
                self.sim, capacity=config.relay_nodes_per_group
            )
            dcs = [
                f"{region}-dc{i + 1}" for i in range(config.dcs_per_region)
            ]
            self.data_centers[region] = dcs
            self.summary_dcs[region] = dcs[: config.summary_dcs_per_region]
            for dc in dcs:
                self.intra[(region, dc)] = Link(
                    self.sim,
                    config.intra_bps,
                    config.intra_latency_s,
                    name=f"{region}->{dc}",
                    stat_bucket_s=config.stat_bucket_s,
                )

    # ------------------------------------------------------------------
    def register_metrics(self, registry) -> None:
        """Register every link's byte/transfer counters as live views.

        Naming: ``bifrost.link.<src>-<dst>.bytes`` for a physical
        backbone link, ``bifrost.link.<src>-<dst>.<stream>.bytes`` for
        its reserved sub-links, and the same scheme for intra-region
        links — the counters Bifrost's monitoring platform "keeps
        collecting" in the paper.

        Each link's family registers as one array view: a single
        row-reader per link instead of four closures, so wide fleets
        pay one call per link per snapshot.  Names and values are
        identical to per-counter registration.
        """

        def link_row(link: Link):
            return lambda: (
                link.bytes_sent,
                link.transfer_count,
                link.delivery_failures,
                1.0 if link.partitioned else 0.0,
            )

        suffixes = ("bytes", "transfers", "delivery_errors", "partitioned")
        for (source, destination), link in self.backbone.items():
            prefix = f"bifrost.link.{source}-{destination}"
            registry.register_array(prefix, suffixes, link_row(link))
            for stream, sublink in self.streams[(source, destination)].items():
                registry.register_array(
                    f"{prefix}.{stream}", suffixes, link_row(sublink)
                )
        for (region, dc), link in self.intra.items():
            registry.register_array(
                f"bifrost.link.{region}-{dc}", suffixes, link_row(link)
            )

    # ------------------------------------------------------------------
    # Fault injection (see ``repro.faults``)
    # ------------------------------------------------------------------
    def _backbone_links(self, source: str, destination: str) -> List[Link]:
        """A backbone hop's physical link plus its reserved sub-links."""
        try:
            physical = self.backbone[(source, destination)]
        except KeyError:
            raise RoutingError(
                f"no backbone link {source}->{destination}"
            ) from None
        return [physical, *self.streams[(source, destination)].values()]

    def partition_link(
        self, source: str, destination: str, both_directions: bool = True
    ) -> None:
        """Blackhole a backbone hop (physical link and every sub-link)."""
        pairs = [(source, destination)]
        if both_directions:
            pairs.append((destination, source))
        for src, dst in pairs:
            for link in self._backbone_links(src, dst):
                link.partition()

    def degrade_link(
        self,
        source: str,
        destination: str,
        factor: float,
        both_directions: bool = True,
    ) -> None:
        """Throttle a backbone hop to ``factor`` of nominal bandwidth."""
        pairs = [(source, destination)]
        if both_directions:
            pairs.append((destination, source))
        for src, dst in pairs:
            for link in self._backbone_links(src, dst):
                link.degrade(factor)

    def restore_link(
        self, source: str, destination: str, both_directions: bool = True
    ) -> None:
        """Heal a backbone hop: clear partition and degradation."""
        pairs = [(source, destination)]
        if both_directions:
            pairs.append((destination, source))
        for src, dst in pairs:
            for link in self._backbone_links(src, dst):
                link.restore()

    def link_partitioned(self, source: str, destination: str) -> bool:
        """Whether a backbone hop is currently blackholed."""
        return self.backbone[(source, destination)].partitioned

    def route_partitioned(self, hops: List[str]) -> bool:
        """Whether any backbone hop along ``hops`` is blackholed."""
        return any(
            self.link_partitioned(src, dst) for src, dst in zip(hops, hops[1:])
        )

    # ------------------------------------------------------------------
    def all_data_centers(self) -> List[str]:
        """Every data center, region by region."""
        return [dc for region in self.regions for dc in self.data_centers[region]]

    def stream_link(self, source: str, destination: str, stream: str) -> Link:
        """The reserved sub-link for ``stream`` on a backbone hop."""
        try:
            return self.streams[(source, destination)][stream]
        except KeyError:
            raise RoutingError(
                f"no {stream!r} stream on link {source}->{destination}"
            ) from None

    def intra_link(self, region: str, dc: str) -> Link:
        try:
            return self.intra[(region, dc)]
        except KeyError:
            raise RoutingError(f"no intra link {region}->{dc}") from None

    def routes(self, destination_region: str) -> List[List[str]]:
        """Candidate hop sequences from the origin to a region.

        The direct backbone path plus one detour through each other
        region (the paper's "circumvent the channels sustaining high
        traffic").
        """
        if destination_region not in self.regions:
            raise RoutingError(f"unknown region {destination_region!r}")
        candidates = [[ORIGIN, destination_region]]
        for via in self.regions:
            if via != destination_region:
                candidates.append([ORIGIN, via, destination_region])
        return candidates


def build_topology(
    sim: Simulator, config: TopologyConfig | None = None
) -> Topology:
    """Construct the paper's deployment over a simulator."""
    return Topology(sim, config or TopologyConfig())
