"""Slices: the unit of index transmission.

The build data center "keeps sending slices of index data in GBs every
hour"; a slice here is a checksummed batch of entries of one index kind.
The serialization is deterministic, the CRC is computed over the payload,
and intermediate relay nodes re-verify it (paper Section 3, "Failures in
Transmission").
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.bifrost.signature import checksum
from repro.errors import ChecksumMismatchError, ConfigError
from repro.indexing.types import IndexDataset, IndexEntry, IndexKind

_ENTRY_HEADER = struct.Struct("<HlB")  # key_len, value_len (-1 = dedup), kind

# Hoisted kind<->wire-index maps: the per-entry `list(IndexKind)` +
# O(kinds) `.index()` lookup dominated serialize/deserialize profiles.
KIND_TO_INDEX = {kind: index for index, kind in enumerate(IndexKind)}
INDEX_TO_KIND = tuple(IndexKind)


def serialize_entries(entries: List[IndexEntry]) -> bytes:
    """Deterministic wire encoding of a slice's entries."""
    parts: List[bytes] = []
    pack = _ENTRY_HEADER.pack
    kind_index = KIND_TO_INDEX
    for entry in entries:
        value = entry.value
        parts.append(
            pack(
                len(entry.key),
                -1 if value is None else len(value),
                kind_index[entry.kind],
            )
        )
        parts.append(entry.key)
        if value is not None:
            parts.append(value)
    return b"".join(parts)


def deserialize_entries(payload: bytes) -> Iterator[IndexEntry]:
    """Decode the wire encoding back into entries."""
    kinds = INDEX_TO_KIND
    offset = 0
    while offset < len(payload):
        key_len, value_len, kind_index = _ENTRY_HEADER.unpack_from(payload, offset)
        offset += _ENTRY_HEADER.size
        key = payload[offset : offset + key_len]
        offset += key_len
        if value_len < 0:
            value = None
        else:
            value = payload[offset : offset + value_len]
            offset += value_len
        yield IndexEntry(kinds[kind_index], bytes(key), value)


@dataclass(slots=True)
class Slice:
    """One transmission unit: entries of a single kind, checksummed.

    A *delta* slice (``is_delta=True``) carries the chunk-level wire
    encoding from :mod:`repro.bifrost.chunking` instead of full values;
    the destination reassembles against its chunk store via
    :meth:`delta_items`.
    """

    slice_id: str
    version: int
    kind: IndexKind
    entries: List[IndexEntry]
    payload: bytes
    crc: int
    #: simulated time the slice becomes available at the build DC
    available_at: float = 0.0
    is_delta: bool = False
    #: compressed wire stream (:mod:`repro.bifrost.encoding`); when set,
    #: *this* is what travels — size accounting, the CRC, and corruption
    #: all apply to the wire bytes, and ingestion decodes back to the
    #: logical entries
    wire: Optional[bytes] = None
    _corrupted: bool = field(default=False, repr=False)
    #: (payload, wire) as they were before :meth:`corrupt` flipped bytes,
    #: so :meth:`clean_copy` retransmits the pristine representation
    _pristine: Optional[tuple] = field(default=None, repr=False)

    @classmethod
    def pack(
        cls,
        slice_id: str,
        version: int,
        kind: IndexKind,
        entries: List[IndexEntry],
        available_at: float = 0.0,
    ) -> "Slice":
        payload = serialize_entries(entries)
        return cls(
            slice_id=slice_id,
            version=version,
            kind=kind,
            entries=entries,
            payload=payload,
            crc=checksum(payload),
            available_at=available_at,
        )

    @classmethod
    def pack_delta(
        cls,
        slice_id: str,
        version: int,
        kind: IndexKind,
        entries: List[IndexEntry],
        encodings,
        available_at: float = 0.0,
    ) -> "Slice":
        """Pack entries as the chunk-delta wire format.

        ``encodings`` maps ``(kind, key)`` to the
        :class:`~repro.bifrost.chunking.DeltaEncodedValue` for every
        entry that carries a value; value-less entries ship as unchanged
        markers.
        """
        from repro.bifrost.chunking import serialize_delta_entries

        payload = serialize_delta_entries(entries, encodings)
        return cls(
            slice_id=slice_id,
            version=version,
            kind=kind,
            entries=entries,
            payload=payload,
            crc=checksum(payload),
            available_at=available_at,
            is_delta=True,
        )

    def delta_items(self):
        """Decode a delta slice's wire payload: (kind, key, encoding)."""
        from repro.bifrost.chunking import deserialize_delta_entries

        if not self.is_delta:
            raise ConfigError(f"slice {self.slice_id} is not delta-encoded")
        return deserialize_delta_entries(self.payload)

    @property
    def payload_bytes(self) -> int:
        """Logical serialized size — what ingestion must reproduce."""
        return len(self.payload)

    @property
    def wire_bytes(self) -> int:
        """Bytes that actually travel (compressed stream when encoded)."""
        return len(self.payload) if self.wire is None else len(self.wire)

    @property
    def size_bytes(self) -> int:
        """Wire size of the slice, as the transport charges it."""
        return self.wire_bytes + 64  # slice header + checksum framing

    def verify(self) -> None:
        """Recompute the checksum; raises on mismatch (a relay's job).

        The CRC covers whatever representation travels: the compressed
        wire stream when one is attached, the raw payload otherwise —
        so a wire-encoded slice damaged in flight is caught *before*
        decompression ever runs.
        """
        data = self.payload if self.wire is None else self.wire
        if self._corrupted or checksum(data) != self.crc:
            raise ChecksumMismatchError(f"slice {self.slice_id} failed its CRC")

    def corrupt(self) -> None:
        """Failure injection: the transported bytes were damaged.

        Flips a real byte in the travelling representation (the wire
        stream when encoded, else the payload).  The pristine bytes are
        remembered, so ``clean_copy`` still produces pristine
        retransmissions.
        """
        if self._pristine is None:
            self._pristine = (self.payload, self.wire)
        data = self.payload if self.wire is None else self.wire
        if data:
            middle = len(data) // 2
            damaged = (
                data[:middle]
                + bytes([data[middle] ^ 0xFF])
                + data[middle + 1 :]
            )
            if self.wire is None:
                self.payload = damaged
            else:
                self.wire = damaged
        self._corrupted = True

    def clean_copy(self) -> "Slice":
        """A pristine retransmission of this slice from the source."""
        payload, wire = (
            (self.payload, self.wire)
            if self._pristine is None
            else self._pristine
        )
        return Slice(
            slice_id=self.slice_id,
            version=self.version,
            kind=self.kind,
            entries=self.entries,
            payload=payload,
            crc=self.crc,
            available_at=self.available_at,
            is_delta=self.is_delta,
            wire=wire,
        )


class Slicer:
    """Packs a dataset's entries into bounded-size slices per kind."""

    def __init__(self, target_slice_bytes: int = 4 * 1024 * 1024) -> None:
        if target_slice_bytes < 1024:
            raise ConfigError(
                f"target_slice_bytes too small: {target_slice_bytes}"
            )
        self.target_slice_bytes = target_slice_bytes

    def make_slices(self, dataset: IndexDataset) -> List[Slice]:
        """Split each kind's entries into slices of ~target size."""
        slices: List[Slice] = []
        for kind in IndexKind:
            batch: List[IndexEntry] = []
            batch_bytes = 0
            sequence = 0
            for entry in dataset.of_kind(kind):
                batch.append(entry)
                batch_bytes += entry.wire_bytes
                if batch_bytes >= self.target_slice_bytes:
                    slices.append(
                        self._pack(dataset.version, kind, sequence, batch)
                    )
                    batch, batch_bytes = [], 0
                    sequence += 1
            if batch:
                slices.append(self._pack(dataset.version, kind, sequence, batch))
        return slices

    def _pack(
        self,
        version: int,
        kind: IndexKind,
        sequence: int,
        entries: List[IndexEntry],
    ) -> Slice:
        slice_id = f"v{version}-{kind.value}-{sequence:05d}"
        return Slice.pack(slice_id, version, kind, list(entries))

    def make_delta_slices(self, dataset: IndexDataset, encodings) -> List[Slice]:
        """Split a dataset into delta-encoded slices of ~target size.

        ``encodings`` is the :class:`~repro.bifrost.chunking`
        ``(kind, key) -> DeltaEncodedValue`` map; batch sizes follow the
        *wire* bytes of the delta stream, not the full values.
        """
        slices: List[Slice] = []
        for kind in IndexKind:
            batch: List[IndexEntry] = []
            batch_bytes = 0
            sequence = 0
            for entry in dataset.of_kind(kind):
                if entry.value is None:
                    wire = entry.key_bytes + 16
                else:
                    wire = entry.key_bytes + encodings[(kind, entry.key)].wire_bytes
                batch.append(entry)
                batch_bytes += wire
                if batch_bytes >= self.target_slice_bytes:
                    slice_id = f"v{dataset.version}-{kind.value}-{sequence:05d}"
                    slices.append(
                        Slice.pack_delta(
                            slice_id, dataset.version, kind, batch, encodings
                        )
                    )
                    batch, batch_bytes = [], 0
                    sequence += 1
            if batch:
                slice_id = f"v{dataset.version}-{kind.value}-{sequence:05d}"
                slices.append(
                    Slice.pack_delta(
                        slice_id, dataset.version, kind, batch, encodings
                    )
                )
        return slices
