"""The delivery engine: slices from the origin to every data center.

For each slice and each region, a simulation process:

1. waits until the slice is generated (``available_at``);
2. asks the :class:`~repro.bifrost.monitor.NetworkMonitor` for the best
   route (direct, or detouring through another region's relay group);
3. transmits over each backbone hop's reserved stream sub-link, with the
   receiving relay group re-verifying the checksum — a corrupted slice is
   retransmitted from the origin;
4. fans out from the relay group to the region's data centers (summary
   slices only to the region's summary DC), verifying once more and
   handing the slice to the ingestion callback.

Arrival bookkeeping feeds the paper's two operational metrics: *update
time* (first generation to last arrival) and *miss ratio* (slices taking
over an hour to arrive, SLO 0.6%).
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.bifrost.channels import ORIGIN, Topology, stream_of
from repro.bifrost.monitor import NetworkMonitor
from repro.bifrost.slices import Slice
from repro.errors import (
    ChecksumMismatchError,
    ConfigError,
    DeliveryError,
    LinkPartitionedError,
    RoutingError,
    TransmissionError,
)
from repro.indexing.types import IndexKind
from repro.simulation.kernel import Simulator

ArrivalCallback = Callable[[str, Slice], None]


@dataclass(frozen=True)
class TransportConfig:
    """Failure injection and SLO parameters."""

    #: probability a slice is damaged on any single hop
    corruption_probability: float = 0.0
    #: retransmissions before a delivery is abandoned
    max_retransmits: int = 5
    #: per-hop relay processing (checksum + forwarding) time
    relay_processing_s: float = 0.005
    #: a slice arriving later than this after generation is a *miss*
    late_threshold_s: float = 3600.0
    #: consult the monitor for re-routing (False = always direct)
    adaptive_routing: bool = True
    #: route changes tolerated per delivery when links are partitioned
    #: (each failed attempt waits ``reroute_backoff_s`` before retrying)
    max_reroutes: int = 8
    #: wait between reroute attempts while a region is unreachable
    reroute_backoff_s: float = 1.0
    #: "origin-fanout": the origin sends every slice to every region (the
    #: paper's Bifrost).  "p2p": the origin seeds one region per slice and
    #: the seed forwards to its peers — the BitTorrent-style alternative
    #: the paper's related work weighs ("saves 50% bandwidth ... but it is
    #: not reliable"): origin uplink traffic drops to a third, but two of
    #: three regions now sit behind an extra lossy hop.
    distribution: str = "origin-fanout"
    seed: int = 63

    def __post_init__(self) -> None:
        if not 0.0 <= self.corruption_probability < 1.0:
            raise ConfigError("corruption probability must be in [0, 1)")
        if self.max_retransmits < 0:
            raise ConfigError("max_retransmits must be >= 0")
        if self.max_reroutes < 0:
            raise ConfigError("max_reroutes must be >= 0")
        if self.reroute_backoff_s <= 0:
            raise ConfigError("reroute_backoff_s must be positive")
        if self.late_threshold_s <= 0:
            raise ConfigError("late threshold must be positive")
        if self.distribution not in ("origin-fanout", "p2p"):
            raise ConfigError(f"unknown distribution {self.distribution!r}")


@dataclass
class DeliveryReport:
    """Everything the evaluation wants to know about one version's update."""

    version: int
    start_time: float
    #: (data_center, slice_id) -> arrival simulated time
    arrivals: Dict[Tuple[str, str], float] = field(default_factory=dict)
    #: (data_center, slice_id) -> generation time, for lateness
    generated: Dict[Tuple[str, str], float] = field(default_factory=dict)
    retransmissions: int = 0
    abandoned: int = 0
    #: deliveries that switched to (or waited for) a surviving relay
    #: group because a backbone link was partitioned
    relay_failovers: int = 0
    #: (region, slice_id, reason) for every abandoned delivery — the
    #: typed record behind ``abandoned``
    failures: List[Tuple[str, str, str]] = field(default_factory=list)
    bytes_sent: int = 0
    #: bytes that left the *origin* data center (the P2P saving shows here)
    origin_bytes_sent: int = 0
    #: logical (uncompressed) bytes behind ``bytes_sent`` — with wire
    #: encoding off the two are equal; the gap is the compression saving
    payload_bytes_sent: int = 0
    detoured: int = 0
    late_threshold_s: float = 3600.0
    #: the spawned delivery processes (populated by ``run=False`` calls so
    #: a pipelined caller can drive the shared simulator itself)
    processes: List = field(default_factory=list, repr=False)

    @property
    def deliveries(self) -> int:
        return len(self.arrivals)

    @property
    def completion_time(self) -> float:
        """Last arrival's clock time."""
        if not self.arrivals:
            return self.start_time
        return max(self.arrivals.values())

    @property
    def update_time_s(self) -> float:
        """Generation of the first slice to readiness in every DC."""
        return self.completion_time - self.start_time

    @property
    def miss_count(self) -> int:
        """Deliveries that exceeded the lateness threshold, plus losses."""
        late = sum(
            1
            for key, arrived in self.arrivals.items()
            if arrived - self.generated[key] > self.late_threshold_s
        )
        return late + self.abandoned

    @property
    def miss_ratio(self) -> float:
        total = self.deliveries + self.abandoned
        if total == 0:
            return 0.0
        return self.miss_count / total


class BifrostTransport:
    """Runs one version's slice deliveries over the simulated network."""

    def __init__(
        self,
        topology: Topology,
        monitor: Optional[NetworkMonitor] = None,
        config: TransportConfig | None = None,
        tracer=None,
    ) -> None:
        self.topology = topology
        self.sim: Simulator = topology.sim
        self.config = config or TransportConfig()
        self.monitor = monitor or NetworkMonitor(topology)
        #: optional ``obs.Tracer``; each delivery process opens spans on
        #: its own track, so concurrent deliveries never mis-nest
        self.tracer = tracer
        self._random = random.Random(self.config.seed)
        #: additive corruption probability, set/cleared by fault injection
        #: (``repro.faults``) to simulate a burst of in-flight damage
        self.corruption_boost = 0.0
        #: lifetime counters across every ``deliver_version`` call — the
        #: per-report counters reset each version, these do not
        self.total_retransmissions = 0
        self.total_abandoned = 0
        self.total_relay_failovers = 0
        self.total_wire_bytes_sent = 0
        self.total_payload_bytes_sent = 0

    def _span(self, name: str, track: str, parent=None, **attrs):
        """A span on ``track``, or a no-op when tracing is off."""
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, track=track, parent=parent, **attrs)

    def register_metrics(self, registry) -> None:
        """Register the lifetime delivery-health counters.

        ``bifrost.transport.*`` carries the counters that persist across
        ``deliver_version`` calls (per-report counters reset each
        version) — the retransmit/abandon/failover tallies the telemetry
        plane turns into rates.
        """
        registry.register_many(
            "bifrost.transport",
            {
                "retransmissions": lambda: self.total_retransmissions,
                "abandoned": lambda: self.total_abandoned,
                "relay_failovers": lambda: self.total_relay_failovers,
                "wire_bytes_sent": lambda: self.total_wire_bytes_sent,
                "payload_bytes_sent": lambda: self.total_payload_bytes_sent,
            },
        )

    def _account_bytes(self, report: DeliveryReport, item) -> None:
        """Book one hop's traffic: wire bytes (what the link carried)
        and the logical payload bytes behind them."""
        wire = item.size_bytes
        logical = item.payload_bytes + 64
        report.bytes_sent += wire
        report.payload_bytes_sent += logical
        self.total_wire_bytes_sent += wire
        self.total_payload_bytes_sent += logical

    def corruption_probability(self) -> float:
        """Effective per-hop damage probability.

        The configured base rate plus any active fault-injected burst,
        capped below 1.0 so the retransmit loop can always terminate.
        """
        return min(
            0.999, self.config.corruption_probability + self.corruption_boost
        )

    def _note_failover(self, report, track, item, **attrs) -> None:
        """Record one relay failover: counters plus a marker span."""
        report.relay_failovers += 1
        self.total_relay_failovers += 1
        with self._span("relay_failover", track, slice=item.slice_id, **attrs):
            pass

    def _account_loss(
        self, report: DeliveryReport, region: str, slice_id: str,
        exc: DeliveryError,
    ) -> None:
        """Book an abandoned delivery on the report and lifetime counters."""
        report.abandoned += exc.deliveries_lost
        self.total_abandoned += exc.deliveries_lost
        report.failures.append((region, slice_id, str(exc)))

    # ------------------------------------------------------------------
    def deliver_version(
        self,
        slices: List[Slice],
        on_arrival: Optional[ArrivalCallback] = None,
        run: bool = True,
        parent_span=None,
    ) -> DeliveryReport:
        """Deliver every slice to every region's data centers.

        With ``run=True`` (default) the simulator is driven until all
        deliveries complete and the report is final; with ``run=False``
        the processes are spawned (exposed as ``report.processes``) and
        the caller drives the simulator — the concurrent multi-version
        hook :meth:`~repro.core.directload.DirectLoad.run_pipelined_cycles`
        builds on.  ``parent_span`` roots every delivery track under a
        specific span (a version's cycle span), keeping interleaved
        versions' traces separate.

        An empty ``slices`` list is a caller bug — there is no version to
        attribute the delivery to — and raises ``TransmissionError``
        rather than reporting a successful no-op delivery of version 0.
        """
        if not slices:
            raise TransmissionError("deliver_version called with no slices")
        report = DeliveryReport(
            version=slices[0].version,
            start_time=self.sim.now,
            late_threshold_s=self.config.late_threshold_s,
        )
        processes = report.processes
        if self.config.distribution == "p2p":
            regions = self.topology.regions
            for index, item in enumerate(slices):
                seed_region = regions[index % len(regions)]
                processes.append(
                    self.sim.process(
                        self._deliver_p2p(
                            item, seed_region, report, on_arrival, parent_span
                        )
                    )
                )
        else:
            for item in slices:
                for region in self.topology.regions:
                    processes.append(
                        self.sim.process(
                            self._deliver_one(
                                item, region, report, on_arrival, parent_span
                            )
                        )
                    )
        if run:
            done = self.sim.all_of(processes)
            self.sim.run(until=done)
        return report

    # ------------------------------------------------------------------
    def _deliver_one(
        self,
        item: Slice,
        region: str,
        report: DeliveryReport,
        on_arrival: Optional[ArrivalCallback],
        parent_span=None,
    ):
        sim = self.sim
        config = self.config
        if item.available_at > sim.now:
            yield item.available_at - sim.now
        generated_at = sim.now
        stream = stream_of(item.kind)
        track = f"deliver:{region}:{item.slice_id}"
        direct = [ORIGIN, region]

        try:
            with self._span(
                "deliver", track, parent=parent_span,
                slice=item.slice_id, region=region,
            ):
                attempts = 0
                reroutes = 0
                while True:
                    try:
                        if config.adaptive_routing:
                            hops = self.monitor.choose_route(
                                region, item.size_bytes, stream
                            )
                        else:
                            if self.topology.route_partitioned(direct):
                                raise LinkPartitionedError(
                                    f"direct route to {region} is partitioned"
                                )
                            hops = direct
                        if len(hops) > 2:
                            report.detoured += 1
                            if self.topology.route_partitioned(direct):
                                # The region's preferred relay link is
                                # blackholed; a surviving relay group is
                                # carrying its slices instead.
                                self._note_failover(
                                    report, track, item, via=hops[1]
                                )
                        travelling = item.clean_copy()
                        for source, destination in zip(hops, hops[1:]):
                            with self._span(
                                "transmit_hop",
                                track,
                                source=source,
                                destination=destination,
                                slice=item.slice_id,
                                attempt=attempts,
                            ):
                                sublink = self.topology.stream_link(
                                    source, destination, stream
                                )
                                yield sublink.transmit_delay(travelling.size_bytes)
                                self._account_bytes(report, travelling)
                                if source == ORIGIN:
                                    report.origin_bytes_sent += (
                                        travelling.size_bytes
                                    )
                                if (
                                    self._random.random()
                                    < self.corruption_probability()
                                ):
                                    travelling.corrupt()
                                yield config.relay_processing_s
                                travelling.verify()  # relays re-check the CRC
                        break
                    except ChecksumMismatchError:
                        attempts += 1
                        report.retransmissions += 1
                        self.total_retransmissions += 1
                        if attempts > config.max_retransmits:
                            sublink.delivery_failures += 1
                            raise DeliveryError(
                                f"slice {item.slice_id} to {region}: "
                                f"{config.max_retransmits} retransmissions "
                                "all arrived corrupted"
                            )
                    except (LinkPartitionedError, RoutingError) as exc:
                        reroutes += 1
                        if reroutes > config.max_reroutes:
                            raise DeliveryError(
                                f"slice {item.slice_id} to {region}: still "
                                f"unreachable after {config.max_reroutes} "
                                f"reroute attempts ({exc})"
                            )
                        self._note_failover(
                            report, track, item, reason=str(exc)
                        )
                        yield config.reroute_backoff_s

                yield from self._fan_out(
                    travelling, region, generated_at, report, on_arrival, track
                )
        except DeliveryError as exc:
            self._account_loss(report, region, item.slice_id, exc)

    def _fan_out(
        self, travelling, region, generated_at, report, on_arrival,
        track=None, parent_span=None,
    ):
        """Relay group -> the region's data centers.

        The slice occupies one of the region's relay-node work slots for
        the duration of the fan-out (the paper's 20-30 relay nodes per
        group — an undersized group serializes bursts).  Summary slices
        go only to the region's summary-storing data center(s).
        """
        sim = self.sim
        config = self.config
        if track is None:
            track = f"deliver:{region}:{travelling.slice_id}"
        slots = self.topology.relay_slots[region]
        yield slots.acquire()
        try:
            if travelling.kind is IndexKind.SUMMARY:
                targets = self.topology.summary_dcs[region]
            else:
                targets = self.topology.data_centers[region]
            for dc in targets:
                with self._span(
                    "fanout", track, parent=parent_span,
                    dc=dc, slice=travelling.slice_id,
                ):
                    intra = self.topology.intra_link(region, dc)
                    yield intra.transmit_delay(travelling.size_bytes)
                    self._account_bytes(report, travelling)
                    yield config.relay_processing_s
                    travelling.verify()
                    key = (dc, travelling.slice_id)
                    report.arrivals[key] = sim.now
                    report.generated[key] = generated_at
                    if on_arrival is not None:
                        on_arrival(dc, travelling)
        finally:
            slots.release()

    # ------------------------------------------------------------------
    def _deliver_p2p(self, item, seed_region, report, on_arrival,
                     parent_span=None):
        """P2P distribution: seed one region, then peer-forward.

        The origin uplink carries each slice once (the ~50-66% bandwidth
        saving over origin-fanout); peer regions receive it over an extra
        backbone hop from the seed — a second exposure to corruption and
        queueing, which is exactly why the paper judged P2P "not
        reliable" for this pipeline.
        """
        sim = self.sim
        config = self.config
        if item.available_at > sim.now:
            yield item.available_at - sim.now
        generated_at = sim.now
        stream = stream_of(item.kind)
        track = f"deliver:{seed_region}:{item.slice_id}"

        # Origin -> seed region, retrying from the origin on corruption.
        # P2P has no alternate route to the seed, so a partitioned link
        # abandons the delivery outright rather than rerouting.
        attempts = 0
        try:
            while True:
                travelling = item.clean_copy()
                with self._span(
                    "transmit_hop",
                    track,
                    parent=parent_span,
                    source=ORIGIN,
                    destination=seed_region,
                    slice=item.slice_id,
                    attempt=attempts,
                ):
                    sublink = self.topology.stream_link(
                        ORIGIN, seed_region, stream
                    )
                    yield sublink.transmit_delay(travelling.size_bytes)
                    self._account_bytes(report, travelling)
                    report.origin_bytes_sent += travelling.size_bytes
                    if self._random.random() < self.corruption_probability():
                        travelling.corrupt()
                    yield config.relay_processing_s
                try:
                    travelling.verify()
                    break
                except ChecksumMismatchError:
                    attempts += 1
                    report.retransmissions += 1
                    self.total_retransmissions += 1
                    if attempts > config.max_retransmits:
                        sublink.delivery_failures += 1
                        # Losing the seed copy loses every region's copy.
                        raise DeliveryError(
                            f"P2P seed copy of slice {item.slice_id} to "
                            f"{seed_region}: {config.max_retransmits} "
                            "retransmissions all arrived corrupted",
                            deliveries_lost=len(self.topology.regions),
                        )
        except (DeliveryError, LinkPartitionedError) as exc:
            if not isinstance(exc, DeliveryError):
                exc = DeliveryError(
                    f"P2P seed leg to {seed_region}: {exc}",
                    deliveries_lost=len(self.topology.regions),
                )
            self._account_loss(report, seed_region, item.slice_id, exc)
            return

        seed_copy = travelling
        peers = [r for r in self.topology.regions if r != seed_region]
        forwards = [
            sim.process(
                self._forward_from_seed(
                    seed_copy, seed_region, peer, generated_at, report,
                    on_arrival, parent_span,
                )
            )
            for peer in peers
        ]
        yield from self._fan_out(
            seed_copy, seed_region, generated_at, report, on_arrival,
            track, parent_span,
        )
        if forwards:
            yield sim.all_of(forwards)

    def _forward_from_seed(
        self, seed_copy, seed_region, peer_region, generated_at, report,
        on_arrival, parent_span=None,
    ):
        """Seed region -> one peer region, retrying from the seed."""
        sim = self.sim
        config = self.config
        stream = stream_of(seed_copy.kind)
        track = f"deliver:{peer_region}:{seed_copy.slice_id}"
        attempts = 0
        try:
            while True:
                travelling = seed_copy.clean_copy()
                with self._span(
                    "transmit_hop",
                    track,
                    parent=parent_span,
                    source=seed_region,
                    destination=peer_region,
                    slice=seed_copy.slice_id,
                    attempt=attempts,
                ):
                    sublink = self.topology.stream_link(
                        seed_region, peer_region, stream
                    )
                    yield sublink.transmit_delay(travelling.size_bytes)
                    self._account_bytes(report, travelling)
                    if self._random.random() < self.corruption_probability():
                        travelling.corrupt()
                    yield config.relay_processing_s
                try:
                    travelling.verify()
                    break
                except ChecksumMismatchError:
                    attempts += 1
                    report.retransmissions += 1
                    self.total_retransmissions += 1
                    if attempts > config.max_retransmits:
                        sublink.delivery_failures += 1
                        raise DeliveryError(
                            f"P2P forward of slice {seed_copy.slice_id} from "
                            f"{seed_region} to {peer_region}: "
                            f"{config.max_retransmits} retransmissions all "
                            "arrived corrupted"
                        )
        except (DeliveryError, LinkPartitionedError) as exc:
            if not isinstance(exc, DeliveryError):
                exc = DeliveryError(
                    f"P2P forward {seed_region}->{peer_region}: {exc}"
                )
            self._account_loss(report, peer_region, seed_copy.slice_id, exc)
            return
        yield from self._fan_out(
            travelling, peer_region, generated_at, report, on_arrival,
            track, parent_span,
        )
