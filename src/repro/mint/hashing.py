"""Stable hashing for key placement.

``stable_hash`` is the paper's ``H(k)``: deterministic across runs and
processes (Python's builtin ``hash`` is salted per process, which would
make placements irreproducible).  Rendezvous (highest-random-weight)
hashing ranks a group's nodes for a key; taking the top *n* gives replica
placement that moves only ~1/n of keys when membership changes.
"""

from __future__ import annotations

import hashlib
import math
from typing import List, Sequence, Tuple


def stable_hash(key: bytes, salt: bytes = b"") -> int:
    """A 64-bit deterministic hash of ``key``."""
    digest = hashlib.blake2b(key, digest_size=8, salt=salt[:16].ljust(16, b"\0"))
    return int.from_bytes(digest.digest(), "little")


def rendezvous_ranking(node_names: Sequence[str], key: bytes) -> List[str]:
    """Node names ordered by descending rendezvous weight for ``key``."""
    scored = [
        (stable_hash(key, salt=name.encode()[:16]), name) for name in node_names
    ]
    scored.sort(reverse=True)
    return [name for _score, name in scored]


def weighted_rendezvous_ranking(
    weighted_names: Sequence[Tuple[str, float]], key: bytes
) -> List[str]:
    """Rendezvous ranking with per-node weights (drain states).

    The elastic-membership extension of :func:`rendezvous_ranking`:
    every ``(name, weight)`` pair scores by weighted-rendezvous hashing,
    with two placement-stability guarantees the migration machinery
    leans on:

    * **weight <= 0 ranks last** — a draining node keeps a deterministic
      position (by raw hash, after every positive-weight node) so it can
      still serve as failover-of-last-resort, but never attracts *new*
      placement;
    * **uniform positive weights reduce exactly to**
      :func:`rendezvous_ranking` — the comparison stays on the integer
      hash (no float scores), so enabling the weighted path can never
      perturb an existing fleet's placement through rounding.

    Mixed positive weights use the classic ``-w / ln(u)`` score with
    ``u`` the hash mapped into (0, 1); ties break by hash then name,
    keeping the order deterministic.
    """
    live: List[Tuple[float, int, str]] = []
    drained: List[Tuple[int, str]] = []
    for name, weight in weighted_names:
        digest = stable_hash(key, salt=name.encode()[:16])
        if weight <= 0:
            drained.append((digest, name))
        else:
            live.append((weight, digest, name))
    distinct_weights = {weight for weight, _digest, _name in live}
    if len(distinct_weights) <= 1:
        ranked = sorted(
            ((digest, name) for _weight, digest, name in live), reverse=True
        )
    else:
        ranked = []
        scored = []
        for weight, digest, name in live:
            uniform = (digest + 0.5) / 2.0**64
            scored.append((-weight / math.log(uniform), digest, name))
        scored.sort(reverse=True)
        ranked = [(digest, name) for _score, digest, name in scored]
    drained.sort(reverse=True)
    return [name for _digest, name in ranked] + [
        name for _digest, name in drained
    ]
