"""Stable hashing for key placement.

``stable_hash`` is the paper's ``H(k)``: deterministic across runs and
processes (Python's builtin ``hash`` is salted per process, which would
make placements irreproducible).  Rendezvous (highest-random-weight)
hashing ranks a group's nodes for a key; taking the top *n* gives replica
placement that moves only ~1/n of keys when membership changes.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence


def stable_hash(key: bytes, salt: bytes = b"") -> int:
    """A 64-bit deterministic hash of ``key``."""
    digest = hashlib.blake2b(key, digest_size=8, salt=salt[:16].ljust(16, b"\0"))
    return int.from_bytes(digest.digest(), "little")


def rendezvous_ranking(node_names: Sequence[str], key: bytes) -> List[str]:
    """Node names ordered by descending rendezvous weight for ``key``."""
    scored = [
        (stable_hash(key, salt=name.encode()[:16]), name) for name in node_names
    ]
    scored.sort(reverse=True)
    return [name for _score, name in scored]
