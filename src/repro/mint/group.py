"""A group of storage nodes: the unit ``H(k)`` maps to.

Replica placement within the group uses rendezvous hashing over the
member names, so adding or removing a node reshuffles only the keys whose
top-ranked nodes change — and never moves data *between* groups, which is
the paper's scalability argument for the group indirection.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import (
    ClusterError,
    KeyNotFoundError,
    NodeDownError,
    ReplicationError,
)
from repro.mint.hashing import rendezvous_ranking, weighted_rendezvous_ranking
from repro.mint.node import StorageNode


class NodeGroup:
    """Named set of nodes with replica placement and failover reads."""

    def __init__(
        self,
        group_id: int,
        nodes: List[StorageNode],
        replica_count: int = 3,
    ) -> None:
        if replica_count < 1:
            raise ClusterError(f"replica_count must be >= 1, got {replica_count}")
        if len(nodes) < replica_count:
            raise ClusterError(
                f"group {group_id} has {len(nodes)} nodes but needs "
                f"{replica_count} replicas"
            )
        self.group_id = group_id
        self.replica_count = replica_count
        self._nodes: Dict[str, StorageNode] = {}
        #: node name -> ordered ops the node missed while down, as
        #: ("put"|"delete", key, version).  Values are *not* kept — the
        #: repairer (``repro.faults.repair``) copies them from a healthy
        #: peer when the node rejoins, then clears the entry.
        self.repair_backlog: Dict[str, List] = {}
        #: fault-recovery mode (set by ``repro.faults``): a write whose
        #: *every* replica is down parks in ``pending_writes`` — the
        #: relay group holding the payload until the outage heals —
        #: instead of raising :class:`ReplicationError`
        self.park_when_unavailable = False
        #: parked ``(key, version, value)`` writes awaiting a live replica
        self.pending_writes: List = []
        #: read-side tallies, registered as ``mint.<dc>.g<id>.group.*``:
        #: single gets and multi_get calls/keys through this group,
        #: reads answered by a non-preferred replica (``failover_gets``),
        #: and requests the serving tier shed at admission (``shed_gets``,
        #: incremented by the frontend's admission controller).
        self.gets = 0
        self.multi_gets = 0
        self.batched_gets = 0
        self.failover_gets = 0
        self.shed_gets = 0
        #: key -> replica nodes, memoizing the rendezvous ranking.  The
        #: cache is *versioned*: every membership mutation (add/remove/
        #: drain) bumps ``membership_version``, and :meth:`replicas_for`
        #: discards the map when its recorded version falls behind — so
        #: no mutation path can forget to invalidate.  Node crashes and
        #: restarts only flip ``is_up`` and never move placement, so the
        #: cache survives them — exactly the paper's stability argument.
        self._placement_cache: Dict[bytes, List[StorageNode]] = {}
        #: monotonic membership epoch; compared against
        #: ``_placement_version`` to invalidate memoized placements
        self.membership_version = 0
        self._placement_version = 0
        #: names of members being decommissioned: they keep serving
        #: reads as failover of last resort but attract no new placement
        self._draining: set = set()
        #: elastic-transition snapshot (``None`` outside a rebalance):
        #: the member names *before* the membership change, so writes can
        #: dual-apply to old+new placement and reads can prefer the old
        #: (guaranteed-complete) copy until the migrator cuts over
        self._old_member_names: Optional[List[str]] = None
        self._old_nodes: Dict[str, StorageNode] = {}
        self._transition_cache: Dict[bytes, List[StorageNode]] = {}
        #: keys this group still owes a move for (set by the migrator;
        #: exported as the ``elastic.<dc>.g<id>.moving_keys`` gauge)
        self.moving_keys = 0
        self._member_names: List[str] = []
        for node in nodes:
            self.add_node(node)

    def note_missed(
        self, node_name: str, op: str, key: bytes, version: int
    ) -> None:
        """Record an op a down node missed, for later backlog repair."""
        self.repair_backlog.setdefault(node_name, []).append(
            (op, key, version)
        )

    # Pre-elastic internal spelling, kept for the write paths below.
    _note_missed = note_missed

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[StorageNode]:
        return [self._nodes[name] for name in sorted(self._nodes)]

    @property
    def healthy_count(self) -> int:
        return sum(1 for node in self._nodes.values() if node.is_up)

    def node(self, name: str) -> StorageNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise ClusterError(f"no node {name!r} in group {self.group_id}") from None

    def add_node(self, node: StorageNode) -> None:
        """Join a node; existing keys stay where they are."""
        if node.name in self._nodes:
            raise ClusterError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self._member_names = sorted(self._nodes)
        self.membership_version += 1

    def remove_node(self, name: str) -> StorageNode:
        """Leave the group (e.g. decommissioning)."""
        if len(self._nodes) - 1 < self.replica_count:
            raise ClusterError(
                f"removing {name!r} would leave group {self.group_id} "
                f"below {self.replica_count} replicas"
            )
        node = self._nodes.pop(name)
        self._member_names = sorted(self._nodes)
        self._draining.discard(name)
        self.membership_version += 1
        return node

    def mark_draining(self, name: str, draining: bool = True) -> None:
        """Flag a member as leaving: no new placement, failover-only reads.

        A draining node stays a full member (it still serves the keys it
        already holds) but ranks last in :meth:`replicas_for` — the
        weighted-rendezvous weight-0 state — so every key it owned gains
        a replacement replica for the migrator to populate.
        """
        self.node(name)  # raises if unknown
        if draining:
            live = len(self._nodes) - len(self._draining | {name})
            if live < self.replica_count:
                raise ClusterError(
                    f"draining {name!r} would leave group {self.group_id} "
                    f"below {self.replica_count} live replicas"
                )
            self._draining.add(name)
        else:
            self._draining.discard(name)
        self.membership_version += 1

    @property
    def draining(self) -> List[str]:
        return sorted(self._draining)

    # ------------------------------------------------------------------
    # Elastic transitions: dual-apply writes + old-first reads while the
    # migrator copies records onto the new placement.
    # ------------------------------------------------------------------
    @property
    def in_transition(self) -> bool:
        return self._old_member_names is not None

    def begin_transition(self) -> None:
        """Snapshot current membership as the *old* placement epoch.

        Call **before** the membership change (add/remove/drain).  Until
        :meth:`complete_transition`, writes apply to the union of old and
        new placement and reads prefer the old (guaranteed-complete)
        replicas, so no acknowledged key is unreachable mid-move.
        """
        if self._old_member_names is not None:
            raise ClusterError(
                f"group {self.group_id} is already in transition"
            )
        self._old_member_names = list(self._member_names)
        self._old_nodes = dict(self._nodes)
        self._transition_cache.clear()
        self.membership_version += 1

    def complete_transition(self) -> None:
        """Cut over: the new placement is authoritative from here on."""
        if self._old_member_names is None:
            raise ClusterError(
                f"group {self.group_id} is not in transition"
            )
        self._old_member_names = None
        self._old_nodes = {}
        self._transition_cache.clear()
        self.membership_version += 1

    def old_replicas_for(self, key: bytes) -> List[StorageNode]:
        """The key's replicas under the pre-transition membership."""
        if self._old_member_names is None:
            return self.replicas_for(key)
        ranked = rendezvous_ranking(self._old_member_names, key)
        return [
            self._old_nodes[name] for name in ranked[: self.replica_count]
        ]

    def _write_replicas_for(self, key: bytes) -> List[StorageNode]:
        """Write targets for ``key``: new placement, plus — during a
        transition — any old replica not in it (the dual-apply set)."""
        if self._old_member_names is None:
            return self.replicas_for(key)
        nodes = self._transition_cache.get(key)
        if nodes is None:
            nodes = list(self.replicas_for(key))
            current = {node.name for node in nodes}
            for node in self.old_replicas_for(key):
                if node.name not in current:
                    nodes.append(node)
            self._transition_cache[key] = nodes
        return nodes

    # ------------------------------------------------------------------
    def replicas_for(self, key: bytes) -> List[StorageNode]:
        """The ``replica_count`` nodes responsible for ``key``.

        Memoized per key (callers must not mutate the returned list);
        the cache self-invalidates when ``membership_version`` moves past
        the version it was built at.  With drains pending, ranking goes
        through the weighted path (draining members weight 0 — ranked
        last, so they fall out of the top ``replica_count``).
        """
        if self._placement_version != self.membership_version:
            self._placement_cache.clear()
            self._placement_version = self.membership_version
        nodes = self._placement_cache.get(key)
        if nodes is None:
            if self._draining:
                ranked = weighted_rendezvous_ranking(
                    [
                        (name, 0.0 if name in self._draining else 1.0)
                        for name in self._member_names
                    ],
                    key,
                )
            else:
                ranked = rendezvous_ranking(self._member_names, key)
            nodes = [self._nodes[name] for name in ranked[: self.replica_count]]
            self._placement_cache[key] = nodes
        return nodes

    def put(self, key: bytes, version: int, value: Optional[bytes]) -> int:
        """Write to every live replica; returns the number written.

        Raises :class:`ReplicationError` if *no* replica accepted the
        write; a partially-failed write is reported via the return value
        (the node will be repaired on recovery by the update pipeline).
        """
        written = 0
        for node in self._write_replicas_for(key):
            try:
                node.put(key, version, value)
                written += 1
            except NodeDownError:
                self._note_missed(node.name, "put", key, version)
                continue
        if written == 0:
            if self.park_when_unavailable:
                self.pending_writes.append((key, version, value))
                return 0
            raise ReplicationError(
                f"no live replica for key {key!r} in group {self.group_id}"
            )
        return written

    def put_batch(self, items) -> int:
        """Write a batch of ``(key, version, value)`` triples, one engine
        batch per node; returns the total replica writes performed.

        The batch partitions by replica set: every node receives the
        sub-batch of items it replicates, in input order, as a single
        :meth:`StorageNode.put_batch` call — so a slice's worth of keys
        costs each engine one batched pass instead of one put per key
        per replica.  A down node drops its whole sub-batch (the update
        pipeline repairs it on recovery, as with single puts); an item no
        live replica accepted raises :class:`ReplicationError`, matching
        :meth:`put`.
        """
        if not items:
            return 0
        # Buckets key on the node *object* (identity hash), sparing the
        # per-item-per-replica ``node.name`` attribute loads.  During an
        # elastic transition the bucketing switches to the dual-apply
        # union so both placement epochs see the batch.
        per_node: Dict[StorageNode, List] = {}
        if self._old_member_names is None:
            replicas_for = self.replicas_for
        else:
            replicas_for = self._write_replicas_for
        get_bucket = per_node.get
        for item in items:
            for node in replicas_for(item[0]):
                bucket = get_bucket(node)
                if bucket is None:
                    per_node[node] = [item]
                else:
                    bucket.append(item)
        written = 0
        delivered: set = set()
        any_down = False
        for node in self.nodes:
            sub_batch = per_node.get(node)
            if not sub_batch:
                continue
            try:
                node.put_batch(sub_batch)
            except NodeDownError:
                any_down = True
                for key, version, _value in sub_batch:
                    self._note_missed(node.name, "put", key, version)
                continue
            written += len(sub_batch)
            delivered.add(node)
        if not any_down:
            # Every replica took its sub-batch, so no item can be
            # replica-less; skip the per-item accounting pass.  (The
            # happy path carries no per-item index bookkeeping at all —
            # the failure pass below re-derives placement from the
            # memoized ``replicas_for``.)
            return written
        for item in items:
            if any(node in delivered for node in replicas_for(item[0])):
                continue
            if self.park_when_unavailable:
                self.pending_writes.append(item)
                continue
            raise ReplicationError(
                f"no live replica for key {item[0]!r} in "
                f"group {self.group_id}"
            )
        return written

    def _unpark(self, dropping) -> None:
        """Discard parked writes for deleted ``(key, version)`` pairs.

        A version dropped mid-outage must never be resurrected when the
        parked writes replay on recovery.
        """
        if self.pending_writes:
            self.pending_writes = [
                item
                for item in self.pending_writes
                if (item[0], item[1]) not in dropping
            ]

    def read_order(
        self, key: bytes, assigned: Optional[Dict[str, int]] = None
    ) -> List[StorageNode]:
        """The key's replicas, least-loaded first.

        Load is the replica's device clock (``engine.device.now``): the
        node that has accumulated the least simulated work serves next,
        so a hot key's reads rotate across its replica set instead of
        pinning the rendezvous-top node.  Down replicas sort last (they
        only matter as failover of last resort) and ties break by
        rendezvous rank, keeping the order deterministic.

        ``assigned`` is the batch-aware extension :meth:`multi_get`
        uses: a node-name -> keys-already-assigned-this-batch map that
        outranks the device clock, so a batch spreads across a key's
        live replicas *within* one call instead of piling onto whichever
        replica was least loaded when the batch arrived (device clocks
        only advance when the engine runs, so without the bias every
        item of a batch would pick the same node).  ``None`` (the
        default, and every single-key caller) leaves the order exactly
        as before.
        """
        if self._old_member_names is None and not self._draining:
            replicas = self.replicas_for(key)
            if assigned is None:
                sort_key = lambda pair: (  # noqa: E731 - tiny local ordering
                    not pair[1].is_up,
                    pair[1].engine.device.now,
                    pair[0],
                )
            else:
                sort_key = lambda pair: (  # noqa: E731
                    not pair[1].is_up,
                    assigned.get(pair[1].name, 0),
                    pair[1].engine.device.now,
                    pair[0],
                )
            return [
                node
                for _rank, node in sorted(enumerate(replicas), key=sort_key)
            ]
        # Elastic slow path (transition or drain in effect): candidates
        # are the old placement (guaranteed complete mid-move) plus any
        # new-only replicas.  Live non-draining nodes come first — a
        # draining member never serves while a healthier candidate
        # exists — then old-placement nodes outrank new-only ones whose
        # copies may still be in flight; within a tier the usual
        # least-loaded/rendezvous ordering applies.
        if self._old_member_names is not None:
            replicas = list(self.old_replicas_for(key))
            in_old = {node.name for node in replicas}
            replicas += [
                node
                for node in self.replicas_for(key)
                if node.name not in in_old
            ]
        else:
            replicas = self.replicas_for(key)
            in_old = {node.name for node in replicas}
        draining = self._draining
        if assigned is None:
            sort_key = lambda pair: (  # noqa: E731
                not pair[1].is_up,
                pair[1].name in draining,
                pair[1].name not in in_old,
                pair[1].engine.device.now,
                pair[0],
            )
        else:
            sort_key = lambda pair: (  # noqa: E731
                not pair[1].is_up,
                pair[1].name in draining,
                pair[1].name not in in_old,
                assigned.get(pair[1].name, 0),
                pair[1].engine.device.now,
                pair[0],
            )
        return [
            node
            for _rank, node in sorted(enumerate(replicas), key=sort_key)
        ]

    def get(self, key: bytes, version: int) -> bytes:
        """Read from the least-loaded live replica, with failover.

        The paper sends requests "to the relevant nodes in parallel";
        the simulation models that fan-out actually *spreading* load:
        the least-loaded live replica (see :meth:`read_order`) answers
        and absorbs the read cost, so no single device clock soaks up a
        whole group's read traffic.

        Failover semantics are unchanged: a down replica is skipped, and
        a replica that is up but *missing* the key (it lost an unflushed
        tail in a crash and has not been repaired yet) falls through to
        the next the same way — the parallel fan-out masks both.  Both
        fall-throughs are counted now: the missing node's
        ``missing_gets`` ticks, and a read ultimately answered by a
        non-preferred replica ticks the group's ``failover_gets`` — the
        observability the write path always had.
        """
        self.gets += 1
        missing: KeyNotFoundError | None = None
        all_down = True
        fell_through = False
        for node in self.read_order(key):
            if not node.is_up:
                # Skip proactively rather than paying a NodeDownError per
                # read; the skip is visible in the node's stats.
                node.skipped_gets += 1
                fell_through = True
                continue
            try:
                value = node.get(key, version)
            except NodeDownError:
                node.skipped_gets += 1
                fell_through = True
                continue
            except KeyNotFoundError as exc:
                all_down = False
                missing = exc
                node.missing_gets += 1
                fell_through = True
                continue
            if fell_through:
                self.failover_gets += 1
            return value
        if all_down:
            raise ReplicationError(
                f"all replicas down for key {key!r} in group {self.group_id}"
            )
        assert missing is not None
        raise missing

    def multi_get(self, items, missing: str = "raise") -> List:
        """Read a batch of ``(key, version)`` pairs, one engine batch per
        node; returns the values in input order.

        The scatter half of the serving fast path: each item picks the
        least-loaded live replica via the batch-aware
        :meth:`read_order` (the running per-node assignment count
        outranks the device clock, so a batch of hot keys spreads across
        the replica set within one call), sub-batches issue as a single
        :meth:`StorageNode.get_batch` per node, and failures fail over
        *per key*: an item its node missed (``None`` in the sub-batch
        result — the node lost an unflushed tail) retries on the key's
        next untried replica in a later round, while the resolved rest of
        the batch stands.

        Counter semantics match :meth:`get`: a down replica encountered
        in an item's order ticks its ``skipped_gets``, an up-but-missing
        serve ticks the node's ``missing_gets``, and an item answered by
        a non-preferred replica ticks the group's ``failover_gets``.

        A key with every replica down raises
        :class:`~repro.errors.ReplicationError`; a key every live
        replica is missing raises :class:`~repro.errors.KeyNotFoundError`
        when ``missing="raise"`` (the default, matching :meth:`get`) or
        reads as ``None`` when ``missing="none"`` (the serving frontend's
        mode: one cold key must not fail a coalesced batch).
        """
        if missing not in ("raise", "none"):
            raise ClusterError(
                f'multi_get missing mode must be "raise" or "none", '
                f"got {missing!r}"
            )
        count = len(items)
        if not count:
            return []
        self.multi_gets += 1
        self.batched_gets += count
        results: List = [None] * count
        #: per item: node names already tried (live serve or down skip)
        tried: List[set] = [set() for _ in range(count)]
        #: per item: some live replica answered but lacked the key
        live_missed = [False] * count
        #: node name -> items assigned this call (the read_order bias)
        assigned: Dict[str, int] = {}
        pending = list(range(count))
        while pending:
            per_node: Dict[StorageNode, List[int]] = {}
            for index in pending:
                key = items[index][0]
                choice = None
                for node in self.read_order(key, assigned):
                    if node.name in tried[index]:
                        continue
                    if not node.is_up:
                        node.skipped_gets += 1
                        tried[index].add(node.name)
                        continue
                    choice = node
                    break
                if choice is None:
                    # Every replica tried: distinguish "live replicas
                    # missed the key" from "no replica was ever up".
                    if not live_missed[index]:
                        raise ReplicationError(
                            f"all replicas down for key {key!r} in "
                            f"group {self.group_id}"
                        )
                    if missing == "raise":
                        raise KeyNotFoundError(
                            f"no live item for {key!r}/{items[index][1]}"
                        )
                    continue  # missing == "none": the slot stays None
                tried[index].add(choice.name)
                assigned[choice.name] = assigned.get(choice.name, 0) + 1
                per_node.setdefault(choice, []).append(index)
            retry: List[int] = []
            # Deterministic dispatch order (sorted node names), matching
            # the write path's per-node iteration.
            for node in self.nodes:
                indices = per_node.get(node)
                if not indices:
                    continue
                try:
                    values = node.get_batch([items[i] for i in indices])
                except NodeDownError:
                    node.skipped_gets += len(indices)
                    retry.extend(indices)
                    continue
                for index, value in zip(indices, values):
                    if value is None:
                        node.missing_gets += 1
                        live_missed[index] = True
                        retry.append(index)
                    else:
                        results[index] = value
                        if len(tried[index]) > 1:
                            self.failover_gets += 1
            retry.sort()
            pending = retry
        return results

    def delete(
        self, key: bytes, version: int, missing_ok: bool = False
    ) -> int:
        """Delete on every live replica; returns the number reached.

        ``missing_ok`` (implied while the group is in transition)
        tolerates replicas that do not hold the record yet — a new
        placement member the migrator is still copying toward.
        """
        tolerant = missing_ok or self._old_member_names is not None
        deleted = 0
        for node in self._write_replicas_for(key):
            try:
                node.delete(key, version)
                deleted += 1
            except NodeDownError:
                self._note_missed(node.name, "delete", key, version)
                continue
            except KeyNotFoundError:
                if not tolerant:
                    raise
                continue
        self._unpark({(key, version)})
        return deleted

    def delete_batch(self, items, missing_ok: bool = False) -> int:
        """Delete ``(key, version)`` pairs, one engine batch per node.

        The batched eviction path: items partition by replica set and
        each node takes its sub-batch as a single
        :meth:`StorageNode.delete_batch` call.  As with :meth:`delete`,
        a down node is skipped (the version is gone fleet-wide anyway),
        and ``missing_ok`` (implied in transition) tolerates records a
        new placement member has not received yet: the batch falls back
        to per-item deletes, skipping the holes.  Returns the total
        replica deletions performed.
        """
        if not items:
            return 0
        tolerant = missing_ok or self._old_member_names is not None
        per_node: Dict[StorageNode, List] = {}
        for item in items:
            for node in self._write_replicas_for(item[0]):
                per_node.setdefault(node, []).append(item)
        deleted = 0
        for node in self.nodes:
            sub_batch = per_node.get(node)
            if not sub_batch:
                continue
            try:
                node.delete_batch(sub_batch)
                deleted += len(sub_batch)
            except NodeDownError:
                for key, version in sub_batch:
                    self._note_missed(node.name, "delete", key, version)
                continue
            except KeyNotFoundError:
                if not tolerant:
                    raise
                # The batched call validated before touching anything,
                # so replay item-by-item around the missing records.
                for key, version in sub_batch:
                    try:
                        node.delete(key, version)
                        deleted += 1
                    except KeyNotFoundError:
                        continue
                    except NodeDownError:
                        self._note_missed(node.name, "delete", key, version)
        self._unpark({(key, version) for key, version in items})
        return deleted

    def scan(self, start_key: bytes, end_key: bytes):
        """Range-scan the group: the union of every live node's items.

        Replicas within the group hold overlapping key subsets (each key
        lives on ``replica_count`` of the nodes), so the union is
        deduplicated by (key, version); the result is sorted.
        """
        seen = {}
        any_up = False
        for node in self.nodes:
            if not node.is_up:
                continue
            any_up = True
            for key, version, value in node.engine.scan(start_key, end_key):
                seen.setdefault((key, version), value)
        if not any_up:
            raise ReplicationError(
                f"all nodes down in group {self.group_id}; cannot scan"
            )
        for (key, version) in sorted(seen):
            yield key, version, seen[(key, version)]
