"""Tiered integrity hashing for ingested index records.

The hot put/ingest path cannot afford a full cryptographic signature per
record — at web scale that is most of the ingest CPU.  This module keeps
integrity *tiered* instead:

* **ingest time (cheap)** — one CRC32 *leaf checksum* per record, a
  Merkle-style tree of CRC32 combines above the leaves, and a single
  BLAKE2b *seal* over each slice's Merkle root.  Cost per record is one
  CRC plus O(1) amortised combines; the only cryptographic hash is one
  per slice.
* **audit time (rare)** — :class:`repro.faults.repair.ReplicaRepairer`
  samples ``ceil(log2(n)) + 1`` records per slice, recomputes their leaf
  checksums from the stored bytes, verifies each leaf's Merkle path up
  to the sealed root, and full-hashes only the sampled records against
  their build-time signatures.  ``audit_hashes`` therefore grows
  O(log n) per audited slice instead of O(n) — the counter the bandwidth
  bench verifies.  A divergence triggers a full leaf sweep of that slice
  to locate every damaged record.

Build-time value signatures ride the entries (and the wire encoding), so
storing them here is free — no hashing happens at ingest beyond the CRCs
and the per-slice seal.
"""

from __future__ import annotations

import hashlib
import math
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bifrost.signature import SIGNATURE_BYTES
from repro.indexing.types import IndexKind

_LEAF_HEADER = struct.Struct("<IB")  # version, dedup flag
_COMBINE = struct.Struct("<II")


def leaf_checksum(key: bytes, version: int, value: Optional[bytes]) -> int:
    """CRC32 leaf over one record: key, version, and stored bytes.

    ``value is None`` marks a deduplicated record (the store kept a
    version marker, not bytes); the flag is covered so a marker and an
    empty value cannot collide.
    """
    crc = zlib.crc32(key)
    crc = zlib.crc32(_LEAF_HEADER.pack(version, 1 if value is None else 0), crc)
    if value is not None:
        crc = zlib.crc32(value, crc)
    return crc & 0xFFFFFFFF


def combine_checksums(left: int, right: int) -> int:
    """One Merkle combine: CRC32 over the packed child checksums."""
    return zlib.crc32(_COMBINE.pack(left, right)) & 0xFFFFFFFF


def record_signature(key: bytes, version: int, value: Optional[bytes]) -> bytes:
    """Full cryptographic record signature — the audit-tier hash.

    This is the expensive hash the tiered design keeps *off* the ingest
    path; audits compute it only for sampled records.
    """
    digest = hashlib.blake2b(digest_size=SIGNATURE_BYTES)
    digest.update(key)
    digest.update(_LEAF_HEADER.pack(version, 1 if value is None else 0))
    if value is not None:
        digest.update(value)
    return digest.digest()


def merkle_levels(leaves: List[int]) -> List[List[int]]:
    """All tree levels, leaves first; odd nodes promote unchanged."""
    levels = [list(leaves)]
    current = levels[0]
    while len(current) > 1:
        parents = []
        for index in range(0, len(current) - 1, 2):
            parents.append(combine_checksums(current[index], current[index + 1]))
        if len(current) % 2:
            parents.append(current[-1])
        levels.append(parents)
        current = parents
    return levels


@dataclass
class SliceSummary:
    """The integrity record one ingested slice leaves behind.

    ``records`` holds ``(key, version, dedup, build_signature)`` per
    record in ingest order — the build signature is ``None`` only for
    deduplicated markers (no bytes stored, nothing to sign).
    """

    slice_id: str
    kind: IndexKind
    version: int
    records: List[Tuple[bytes, int, bool, Optional[bytes]]]
    levels: List[List[int]] = field(repr=False)
    seal: bytes = b""

    @property
    def record_count(self) -> int:
        return len(self.records)

    @property
    def root(self) -> int:
        return self.levels[-1][0]

    def path_checksums(self, index: int) -> List[Tuple[int, bool]]:
        """Sibling checksums from leaf ``index`` to the root.

        Each element is ``(sibling_checksum, sibling_is_right)``; levels
        where the node promoted without a sibling contribute nothing.
        """
        path: List[Tuple[int, bool]] = []
        for level in self.levels[:-1]:
            sibling = index ^ 1
            if sibling < len(level):
                path.append((level[sibling], bool(sibling & 1)))
            index //= 2
        return path

    def verify_path(self, index: int, leaf: int) -> bool:
        """Fold ``leaf`` up its Merkle path; True iff the root matches."""
        node = leaf
        for sibling, sibling_is_right in self.path_checksums(index):
            if sibling_is_right:
                node = combine_checksums(node, sibling)
            else:
                node = combine_checksums(sibling, node)
        return node == self.root


def seal_summary(slice_id: str, root: int) -> bytes:
    """The per-slice BLAKE2b seal — one crypto hash per slice, not per
    record."""
    digest = hashlib.blake2b(digest_size=SIGNATURE_BYTES)
    digest.update(slice_id.encode())
    digest.update(struct.pack("<I", root))
    return digest.digest()


@dataclass
class IntegrityCounters:
    """Hot-path vs audit-path hashing work, kept strictly apart."""

    # ingest tier (cheap)
    ingest_checksums: int = 0  # CRC32 leaves computed at ingest
    seal_signatures: int = 0  # one BLAKE2b per slice
    records_tracked: int = 0
    slices_tracked: int = 0
    # audit tier (rare, expensive per hash)
    audited_slices: int = 0
    audited_records: int = 0  # records whose leaf CRC was recomputed
    audit_hashes: int = 0  # full signatures computed during audits
    audit_leaf_checks: int = 0
    audit_full_sweeps: int = 0
    divergent_records: int = 0
    records_repaired: int = 0


class IntegrityIndex:
    """Per-cluster store of slice summaries, shared by all its nodes.

    The summaries describe what *should* be on every replica (ingest
    writes all replicas identically), so one index per cluster audits
    any of its nodes.
    """

    def __init__(self) -> None:
        self.counters = IntegrityCounters()
        #: slice_id -> summary
        self._slices: Dict[str, SliceSummary] = {}
        #: version -> slice_ids, for version-drop pruning
        self._by_version: Dict[int, List[str]] = {}

    @property
    def tracked_slices(self) -> int:
        return len(self._slices)

    def absorb(self, item, stored) -> SliceSummary:
        """Summarise one ingested slice: leaves, tree, seal.

        ``stored`` is ``(storage_key, value, build_signature)`` per
        record in ingest order — the bytes the storage nodes actually
        hold (post wire-decode when encoding is on), keyed the way the
        engines key them so audits peek directly.
        """
        counters = self.counters
        records: List[Tuple[bytes, int, bool, Optional[bytes]]] = []
        leaves: List[int] = []
        version = item.version
        for key, value, build_sig in stored:
            leaves.append(leaf_checksum(key, version, value))
            records.append((key, version, value is None, build_sig))
        counters.ingest_checksums += len(leaves)
        levels = merkle_levels(leaves) if leaves else [[0]]
        summary = SliceSummary(
            slice_id=item.slice_id,
            kind=item.kind,
            version=version,
            records=records,
            levels=levels,
        )
        summary.seal = seal_summary(summary.slice_id, summary.root)
        counters.seal_signatures += 1
        counters.records_tracked += len(records)
        counters.slices_tracked += 1
        self._slices[item.slice_id] = summary
        self._by_version.setdefault(version, []).append(item.slice_id)
        return summary

    def summaries_for_version(self, version: int) -> List[SliceSummary]:
        return [
            self._slices[slice_id]
            for slice_id in self._by_version.get(version, [])
            if slice_id in self._slices
        ]

    def all_summaries(self) -> List[SliceSummary]:
        return list(self._slices.values())

    def sample_size(self, record_count: int) -> int:
        """Records audited per slice: ``ceil(log2(n)) + 1``, capped at n."""
        if record_count <= 1:
            return record_count
        return min(record_count, math.ceil(math.log2(record_count)) + 1)

    def drop_version(self, version: int) -> int:
        """Forget a retired version's summaries; returns slices pruned."""
        slice_ids = self._by_version.pop(version, [])
        dropped = 0
        for slice_id in slice_ids:
            summary = self._slices.pop(slice_id, None)
            if summary is not None:
                self.counters.records_tracked -= summary.record_count
                self.counters.slices_tracked -= 1
                dropped += 1
        return dropped

    def register_metrics(self, registry, prefix: str) -> None:
        counters = self.counters
        registry.register_many(
            prefix,
            {
                "ingest_checksums": lambda: counters.ingest_checksums,
                "seal_signatures": lambda: counters.seal_signatures,
                "records_tracked": lambda: counters.records_tracked,
                "slices_tracked": lambda: counters.slices_tracked,
                "audited_slices": lambda: counters.audited_slices,
                "audited_records": lambda: counters.audited_records,
                "audit_hashes": lambda: counters.audit_hashes,
                "audit_leaf_checks": lambda: counters.audit_leaf_checks,
                "audit_full_sweeps": lambda: counters.audit_full_sweeps,
                "divergent_records": lambda: counters.divergent_records,
                "records_repaired": lambda: counters.records_repaired,
            },
        )


__all__ = [
    "IntegrityCounters",
    "IntegrityIndex",
    "SliceSummary",
    "combine_checksums",
    "leaf_checksum",
    "merkle_levels",
    "record_signature",
    "seal_summary",
]
