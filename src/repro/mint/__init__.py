"""Mint: the distributed key-value store inside each data center.

Key placement (paper 2.3): ``H(k)`` maps a key to a *group* of storage
nodes — never directly to a node, so nodes can join and leave a group
without redistributing data across groups.  Within a group, three
replicas land on distinct nodes chosen by rendezvous hashing, and reads
fan out to the replicas in parallel so one slow or recovering node never
shows up in front-end latency.

Each storage node runs a :class:`~repro.qindb.QinDB` engine on its own
simulated SSD (an LSM engine can be swapped in for baselines).
"""

from repro.mint.cluster import MintCluster, MintConfig
from repro.mint.group import NodeGroup
from repro.mint.hashing import rendezvous_ranking, stable_hash
from repro.mint.node import StorageNode

__all__ = [
    "MintCluster",
    "MintConfig",
    "NodeGroup",
    "StorageNode",
    "rendezvous_ranking",
    "stable_hash",
]
