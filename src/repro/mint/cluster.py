"""A Mint cluster: groups of storage nodes behind ``H(k)``.

One cluster lives in each data center.  Keys hash to groups; groups place
replicas.  The cluster also owns slice ingestion (index entries arriving
from Bifrost become versioned puts, with the index kind folded into the
key so URLs and terms never collide).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.bifrost.chunking import ChunkStore
from repro.bifrost.encoding import WireDecoder
from repro.bifrost.slices import Slice
from repro.errors import (
    ClusterError,
    ConfigError,
    KeyNotFoundError,
    ReplicationError,
    WireBaseUnavailableError,
)
from repro.indexing.types import IndexKind
from repro.mint.group import NodeGroup
from repro.mint.hashing import stable_hash
from repro.mint.integrity import IntegrityIndex
from repro.mint.node import Engine, StorageNode
from repro.qindb.engine import QinDB, QinDBConfig

_KIND_PREFIX = {
    IndexKind.FORWARD: b"F:",
    IndexKind.INVERTED: b"I:",
    IndexKind.SUMMARY: b"S:",
}


def storage_key(kind: IndexKind, key: bytes) -> bytes:
    """Fold the index kind into the key (one namespace per family)."""
    return _KIND_PREFIX[kind] + key


@dataclass(frozen=True)
class MintConfig:
    """Shape of one data center's cluster."""

    group_count: int = 2
    nodes_per_group: int = 3
    replica_count: int = 3
    node_capacity_bytes: int = 256 * 1024 * 1024
    #: keep tiered integrity summaries (CRC32 leaves + a Merkle tree +
    #: one BLAKE2b seal per ingested slice) for audit-time verification;
    #: pure bookkeeping — no stored byte changes.  Perf scenarios turn
    #: it off to keep kernel bench numbers comparable.
    integrity_enabled: bool = True

    def __post_init__(self) -> None:
        if self.group_count < 1:
            raise ConfigError("group_count must be >= 1")
        if self.nodes_per_group < self.replica_count:
            raise ConfigError("nodes_per_group must be >= replica_count")


class MintCluster:
    """Hash-partitioned, replicated storage for one data center."""

    #: slot-directory fan-out: ``H(k)`` maps into ``group_count *
    #: SLOTS_PER_GROUP`` virtual slots, and a slot directory maps slots
    #: to groups.  The initial directory assigns slot ``s`` to group
    #: ``s % group_count`` — *exactly* ``H(k) % group_count``, so a
    #: static cluster places identically to the pre-elastic code — but
    #: group splits/merges can now remap individual slots, moving only
    #: 1/slot_count of the keyspace per slot instead of rehashing the
    #: world.
    SLOTS_PER_GROUP = 16

    def __init__(
        self,
        name: str,
        config: MintConfig | None = None,
        engine_factory: Optional[Callable[[str], Engine]] = None,
    ) -> None:
        self.name = name
        self.config = config or MintConfig()
        factory = engine_factory or self._default_engine
        #: kept for elastic membership: late-joining nodes and groups
        #: build their engines from the same factory as construction
        self._engine_factory = factory
        self.groups: List[NodeGroup] = []
        for group_index in range(self.config.group_count):
            nodes = [
                StorageNode(
                    f"{name}/g{group_index}/n{node_index}",
                    factory(f"{name}-g{group_index}-n{node_index}"),
                )
                for node_index in range(self.config.nodes_per_group)
            ]
            self.groups.append(
                NodeGroup(group_index, nodes, self.config.replica_count)
            )
        self.slot_count = self.config.group_count * self.SLOTS_PER_GROUP
        self._slot_map: List[NodeGroup] = [
            self.groups[slot % self.config.group_count]
            for slot in range(self.slot_count)
        ]
        #: slot -> (old owner, new owner) for slots mid-migration: the
        #: old group stays authoritative (reads, version bookkeeping)
        #: while writes dual-apply to both, until the migrator calls
        #: :meth:`complete_slot_move`
        self._moving_slots: Dict[int, tuple] = {}
        #: monotonic id source for groups added after construction
        self._next_group_id = self.config.group_count
        #: per-group monotonic node-name indices for spawned nodes
        self._next_node_index: Dict[int, int] = {
            group.group_id: self.config.nodes_per_group
            for group in self.groups
        }
        #: metrics registry once bound, so elastic membership changes
        #: can (un)register node/group readers at join/leave time
        self._registry = None
        #: per-version keys ingested, for the version-deletion thread
        self.version_keys: Dict[int, List[bytes]] = {}
        #: receiver-side chunk store for delta-encoded slices
        self.chunk_store = ChunkStore()
        #: per-version chunk recipes, released when the version drops
        self._version_recipes: Dict[int, List[List[bytes]]] = {}
        #: versions already dropped; a straggler slice of one of these
        #: (still in flight when the version retired) must be discarded,
        #: never ingested — the pipelined engine's version-order guard
        self._retired_versions: set = set()
        #: slices discarded by the retirement guard
        self.stale_slices_dropped = 0
        #: receiver side of the wire codec (:mod:`repro.bifrost.encoding`)
        self.wire_decoder = WireDecoder()
        #: wire-encoded slices waiting for a delta base still in flight
        self._parked_slices: List[Slice] = []
        self.slices_parked = 0
        self.slices_unparked = 0
        #: parked slices discarded because their version retired first
        self.parked_dropped = 0
        #: tiered integrity summaries of everything ingested (audit tier)
        self.integrity: Optional[IntegrityIndex] = (
            IntegrityIndex() if self.config.integrity_enabled else None
        )
        #: optional trace track (``obs.TraceTrack``) for ingest spans
        self.trace = None
        #: key -> group memo over the slot directory.  Node faults flip
        #: ``is_up`` inside a group and never move keys, so entries
        #: survive them; a slot *cutover* (:meth:`complete_slot_move`)
        #: rewrites the directory and flushes the memo.
        self._group_cache: Dict[bytes, NodeGroup] = {}

    def _default_engine(self, node_name: str) -> Engine:
        return QinDB.with_capacity(
            self.config.node_capacity_bytes,
            config=QinDBConfig(segment_bytes=4 * 1024 * 1024),
        )

    # ------------------------------------------------------------------
    @property
    def all_nodes(self) -> List[StorageNode]:
        return [node for group in self.groups for node in group.nodes]

    def group_for(self, key: bytes) -> NodeGroup:
        """The paper's ``H(k)`` -> group mapping (memoized per key).

        Resolves through the slot directory; while a slot is moving the
        *old* owner stays authoritative, so version bookkeeping, audits,
        and reads all agree until the migrator cuts the slot over.
        """
        group = self._group_cache.get(key)
        if group is None:
            group = self._slot_map[stable_hash(key) % self.slot_count]
            self._group_cache[key] = group
        return group

    def slot_for(self, key: bytes) -> int:
        """The key's virtual slot in the directory."""
        return stable_hash(key) % self.slot_count

    def group_by_id(self, group_id: int) -> NodeGroup:
        for group in self.groups:
            if group.group_id == group_id:
                return group
        raise ClusterError(f"no group {group_id} in cluster {self.name!r}")

    def slots_of(self, group: NodeGroup) -> List[int]:
        """Slots the directory currently assigns to ``group``."""
        return [
            slot
            for slot, owner in enumerate(self._slot_map)
            if owner is group
        ]

    @property
    def moving_slots(self) -> Dict[int, tuple]:
        """Read-only view of in-flight slot moves (slot -> (old, new))."""
        return dict(self._moving_slots)

    # ------------------------------------------------------------------
    # Elastic membership: node join/leave and group split/merge.  These
    # only mutate topology + metric registrations; actual data movement
    # is the migrator's job (``repro.elastic``).
    # ------------------------------------------------------------------
    def spawn_node(self, group: NodeGroup) -> StorageNode:
        """Build a node from the cluster's engine factory and join it.

        The name continues the group's ``n<i>`` sequence (indices are
        never reused, so metric paths stay unambiguous across the run).
        """
        index = self._next_node_index.get(group.group_id, 0)
        self._next_node_index[group.group_id] = index + 1
        node = StorageNode(
            f"{self.name}/g{group.group_id}/n{index}",
            self._engine_factory(
                f"{self.name}-g{group.group_id}-n{index}"
            ),
        )
        group.add_node(node)
        if self._registry is not None:
            self._register_node_metrics(self._registry, node)
        return node

    def decommission_node(self, group: NodeGroup, name: str) -> StorageNode:
        """Remove a (drained) node and retire its metric readers."""
        node = group.remove_node(name)
        if self._registry is not None:
            path = node.name.replace("/", ".")
            for prefix in (f"mint.{path}", f"qindb.{path}", f"ssd.{path}"):
                self._registry.unregister_prefix(prefix)
        return node

    def add_group(self, node_count: Optional[int] = None) -> NodeGroup:
        """Stand up a new, empty group (no slots assigned yet).

        The planner then schedules slot moves toward it; until a slot
        cuts over, the group serves nothing.
        """
        group_id = self._next_group_id
        self._next_group_id += 1
        count = node_count or self.config.nodes_per_group
        if count < self.config.replica_count:
            raise ConfigError(
                f"new group needs >= {self.config.replica_count} nodes"
            )
        nodes = [
            StorageNode(
                f"{self.name}/g{group_id}/n{node_index}",
                self._engine_factory(
                    f"{self.name}-g{group_id}-n{node_index}"
                ),
            )
            for node_index in range(count)
        ]
        group = NodeGroup(group_id, nodes, self.config.replica_count)
        self.groups.append(group)
        self._next_node_index[group_id] = count
        if self._registry is not None:
            self._register_group_metrics(self._registry, group)
            for node in nodes:
                self._register_node_metrics(self._registry, node)
        return group

    def remove_group(self, group: NodeGroup) -> NodeGroup:
        """Retire a group that no longer owns slots (post-merge)."""
        if self.slots_of(group):
            raise ClusterError(
                f"group {group.group_id} still owns slots; move them first"
            )
        if any(old is group or new is group
               for old, new in self._moving_slots.values()):
            raise ClusterError(
                f"group {group.group_id} is part of an in-flight slot move"
            )
        if len(self.groups) <= 1:
            raise ClusterError("cannot remove the last group")
        self.groups.remove(group)
        if self._registry is not None:
            self._registry.unregister_prefix(
                f"mint.{self.name}.g{group.group_id}.group"
            )
            self._registry.unregister_prefix(
                f"elastic.{self.name}.g{group.group_id}"
            )
            for node in group.nodes:
                path = node.name.replace("/", ".")
                for prefix in (
                    f"mint.{path}", f"qindb.{path}", f"ssd.{path}"
                ):
                    self._registry.unregister_prefix(prefix)
        return group

    def begin_slot_move(self, slot: int, target: NodeGroup) -> None:
        """Start migrating a slot: old owner authoritative, writes
        dual-apply to old + new until :meth:`complete_slot_move`."""
        if not 0 <= slot < self.slot_count:
            raise ClusterError(f"slot {slot} out of range")
        if slot in self._moving_slots:
            raise ClusterError(f"slot {slot} is already moving")
        owner = self._slot_map[slot]
        if owner is target:
            raise ClusterError(f"slot {slot} already owned by target group")
        if target not in self.groups:
            raise ClusterError("target group is not part of this cluster")
        self._moving_slots[slot] = (owner, target)

    def complete_slot_move(self, slot: int) -> None:
        """Cut a slot over to its new owner and flush the group memo."""
        try:
            _owner, target = self._moving_slots.pop(slot)
        except KeyError:
            raise ClusterError(f"slot {slot} is not moving") from None
        self._slot_map[slot] = target
        self._group_cache.clear()

    def abort_slot_move(self, slot: int) -> None:
        """Cancel an in-flight move; the old owner keeps the slot."""
        if self._moving_slots.pop(slot, None) is None:
            raise ClusterError(f"slot {slot} is not moving")

    # ------------------------------------------------------------------
    def put(self, key: bytes, version: int, value: Optional[bytes]) -> int:
        if self._moving_slots:
            move = self._moving_slots.get(self.slot_for(key))
            if move is not None:
                old, new = move
                written = old.put(key, version, value)
                written += new.put(key, version, value)
                return written
        return self.group_for(key).put(key, version, value)

    def put_batch(self, items: List[tuple]) -> int:
        """Write ``(key, version, value)`` triples, partitioned by group.

        Each group receives its keys as one batch (and fans them out as
        one engine batch per node), so slice-granular ingest costs a
        handful of batched passes instead of a put per key per replica.
        Returns the total replica writes performed.
        """
        by_group: Dict[int, List[tuple]] = {}
        if self._moving_slots:
            # Slot-move slow path: items in a moving slot dual-apply to
            # both owners, so the new group is complete at cutover.
            moving = self._moving_slots
            slot_count = self.slot_count
            slot_map = self._slot_map
            for item in items:
                slot = stable_hash(item[0]) % slot_count
                move = moving.get(slot)
                if move is None:
                    by_group.setdefault(
                        slot_map[slot].group_id, []
                    ).append(item)
                else:
                    by_group.setdefault(move[0].group_id, []).append(item)
                    by_group.setdefault(move[1].group_id, []).append(item)
        else:
            for item in items:
                by_group.setdefault(
                    self.group_for(item[0]).group_id, []
                ).append(item)
        total = 0
        for group in self.groups:
            batch = by_group.get(group.group_id)
            if batch:
                if self.trace is not None:
                    with self.trace.span(
                        "ingest_group", group=group.group_id, keys=len(batch)
                    ):
                        total += group.put_batch(batch)
                else:
                    total += group.put_batch(batch)
        return total

    def get(self, key: bytes, version: int) -> bytes:
        if self._moving_slots:
            move = self._moving_slots.get(self.slot_for(key))
            if move is not None:
                # Old-then-new routing: the old owner holds every
                # acknowledged key until cutover (writes dual-apply),
                # so the new-owner fallback only matters if the old
                # group is mid-fault — availability, not correctness.
                old, new = move
                try:
                    return old.get(key, version)
                except (KeyNotFoundError, ReplicationError):
                    return new.get(key, version)
        return self.group_for(key).get(key, version)

    def multi_get(self, items: List[tuple], missing: str = "raise") -> List:
        """Read ``(key, version)`` pairs, partitioned by group; returns
        the values in input order.

        The gather half of the serving fast path: items bucket by the
        memoized ``H(k)`` group mapping (exactly as :meth:`put_batch`
        partitions writes), each group serves its share as one
        :meth:`NodeGroup.multi_get` — batch-aware replica spreading, one
        engine batch per node — and the per-group results scatter back
        into request order.  ``missing`` passes through: ``"raise"``
        matches :meth:`get`'s :class:`~repro.errors.KeyNotFoundError`
        behaviour, ``"none"`` returns per-slot sentinels.
        """
        by_group: Dict[int, List[int]] = {}
        for index, item in enumerate(items):
            by_group.setdefault(
                self.group_for(item[0]).group_id, []
            ).append(index)
        results: List = [None] * len(items)
        for group in self.groups:
            indices = by_group.get(group.group_id)
            if not indices:
                continue
            batch = [items[index] for index in indices]
            if self.trace is not None:
                with self.trace.span(
                    "multi_get_group", group=group.group_id, keys=len(batch)
                ):
                    values = group.multi_get(batch, missing=missing)
            else:
                values = group.multi_get(batch, missing=missing)
            for index, value in zip(indices, values):
                results[index] = value
        return results

    def delete(self, key: bytes, version: int) -> int:
        if self._moving_slots:
            move = self._moving_slots.get(self.slot_for(key))
            if move is not None:
                old, new = move
                # The new owner may not have received this record yet
                # (the migrator is still copying), hence missing_ok.
                return old.delete(key, version) + new.delete(
                    key, version, missing_ok=True
                )
        return self.group_for(key).delete(key, version)

    # ------------------------------------------------------------------
    def ingest_slice(self, item: Slice) -> int:
        """Store every entry of an arrived slice; returns entries written.

        A slice ingests slice-in/batch-out: entries group by node group
        and land as one engine batch per node (:meth:`put_batch`) instead
        of one put per key per replica.  Value-less (deduplicated)
        entries are stored value-less — QinDB's GET traceback resolves
        them against the previous version.  Delta slices are reassembled
        against this data center's chunk store.

        A slice of an already-retired version (its keys were dropped
        while this copy was still in flight) is discarded whole: writing
        it would resurrect keys no version map references, and under
        concurrent multi-version delivery could clobber GC accounting a
        newer version relies on.

        A *wire-encoded* slice (``item.wire`` set) decodes here first.
        A delta whose base has not landed yet (pipelined months let
        version N+1 slices overtake version N's) parks the whole slice;
        every later successful ingest retries the parked set.  The
        slice's entry count is reported at arrival either way, so the
        cycle report's ``keys_delivered`` matches the unencoded run.
        """
        if item.version in self._retired_versions:
            self.stale_slices_dropped += 1
            return 0
        if item.wire is not None:
            return self._ingest_wire(item)
        if item.is_delta:
            return self._ingest_delta(item)
        return self._store_entries(item, item.entries)

    def _ingest_wire(self, item: Slice) -> int:
        """Decode a wire-encoded slice, parking it if a base is missing."""
        try:
            if self.trace is not None:
                with self.trace.span(
                    "wire_decode", slice=item.slice_id,
                    entries=len(item.entries),
                ):
                    entries = self.wire_decoder.decode_slice(item)
            else:
                entries = self.wire_decoder.decode_slice(item)
        except WireBaseUnavailableError:
            self._parked_slices.append(item)
            self.slices_parked += 1
            return len(item.entries)
        written = self._store_entries(item, entries)
        if self._parked_slices:
            self._drain_parked()
        return written

    def _drain_parked(self) -> None:
        """Retry parked slices until no retry makes progress.

        A successfully decoded slice commits new base values, which can
        unblock other parked slices — so the drain loops until a full
        pass parks everything again.  Drained slices were already
        counted at arrival, so their entry counts are *not* re-reported.
        """
        progress = True
        while progress and self._parked_slices:
            progress = False
            for parked in list(self._parked_slices):
                if parked.version in self._retired_versions:
                    self._parked_slices.remove(parked)
                    self.parked_dropped += 1
                    progress = True
                    continue
                try:
                    entries = self.wire_decoder.decode_slice(parked)
                except WireBaseUnavailableError:
                    continue
                self._parked_slices.remove(parked)
                self.slices_unparked += 1
                self._store_entries(parked, entries)
                progress = True

    def _store_entries(self, item: Slice, entries) -> int:
        """The raw batch path: store logical entries, track the version.

        Shared by plain ingest (the slice's own entries) and wire ingest
        (the decoder's output) — both produce byte-identical stores.
        """
        batch = [
            (storage_key(entry.kind, entry.key), item.version, entry.value)
            for entry in entries
        ]
        self.put_batch(batch)
        self.version_keys.setdefault(item.version, []).extend(
            skey for skey, _version, _value in batch
        )
        if self.integrity is not None:
            self.integrity.absorb(
                item,
                [
                    (skey, value, entry.signature)
                    for (skey, _version, value), entry in zip(batch, entries)
                ],
            )
        return len(batch)

    def _ingest_delta(self, item: Slice) -> int:
        recipes = self._version_recipes.setdefault(item.version, [])
        batch = []
        for kind, key, encoding in item.delta_items():
            skey = storage_key(kind, key)
            if encoding is None:
                batch.append((skey, item.version, None))
            else:
                value = self.chunk_store.absorb(encoding)
                recipes.append(encoding.recipe)
                batch.append((skey, item.version, value))
        self.put_batch(batch)
        self.version_keys.setdefault(item.version, []).extend(
            skey for skey, _version, _value in batch
        )
        if self.integrity is not None:
            # Chunk-delta entries carry no build signature (values are
            # reassembled here); audits still leaf-check them.
            self.integrity.absorb(
                item,
                [(skey, value, None) for skey, _version, value in batch],
            )
        return len(batch)

    def drop_version(self, version: int) -> int:
        """Delete every key ingested under ``version`` (oldest-version
        removal when more than four versions persist).

        Keys partition by group and delete as one engine batch per node
        (mirroring :meth:`put_batch`), so eviction — which the pipelined
        engine runs while newer versions' slices are still landing —
        costs a handful of batched passes instead of a delete per key
        per replica.  The version is marked retired first, so any of its
        slices still in flight are dropped on arrival instead of
        re-ingesting keys this deletion just removed.
        """
        self._retired_versions.add(version)
        keys = self.version_keys.pop(version, [])
        by_group: Dict[int, List[tuple]] = {}
        tolerant_groups: set = set()
        if self._moving_slots:
            # Deletions dual-apply during a slot move, like writes: a
            # version dropped mid-migration must not survive on the
            # new owner's copy.  The new owner may not hold every
            # record yet, so its batch tolerates the holes.
            for key in keys:
                move = self._moving_slots.get(self.slot_for(key))
                if move is None:
                    by_group.setdefault(
                        self.group_for(key).group_id, []
                    ).append((key, version))
                else:
                    by_group.setdefault(move[0].group_id, []).append(
                        (key, version)
                    )
                    by_group.setdefault(move[1].group_id, []).append(
                        (key, version)
                    )
                    tolerant_groups.add(move[1].group_id)
        else:
            for key in keys:
                by_group.setdefault(self.group_for(key).group_id, []).append(
                    (key, version)
                )
        for group in self.groups:
            batch = by_group.get(group.group_id)
            if batch:
                group.delete_batch(
                    batch,
                    missing_ok=group.group_id in tolerant_groups,
                )
        for recipe in self._version_recipes.pop(version, []):
            self.chunk_store.release(recipe)
        for parked in [
            item for item in self._parked_slices if item.version == version
        ]:
            self._parked_slices.remove(parked)
            self.parked_dropped += 1
        self.wire_decoder.release_version(version)
        if self.integrity is not None:
            self.integrity.drop_version(version)
        return len(keys)

    def under_replicated(self) -> List[tuple]:
        """Live ``(key, version, live_copies)`` triples short of target.

        Walks every version the cluster still references (ascending, so
        dedup base versions come before the versions that point at them)
        and counts, per key, the replicas that are up *and* actually hold
        the record — a node that lost an unflushed tail in a crash is a
        missing copy even though it answers requests.  An empty result is
        the cluster's "fully re-protected" signal after fault recovery.
        """
        shortfalls: List[tuple] = []
        for version in sorted(self.version_keys):
            seen = set()
            for key in self.version_keys[version]:
                if key in seen:
                    continue
                seen.add(key)
                group = self.group_for(key)
                live = sum(
                    1
                    for node in group.replicas_for(key)
                    if node.is_up and node.engine.exists(key, version)
                )
                if live < group.replica_count:
                    shortfalls.append((key, version, live))
        return shortfalls

    def query(self, kind: IndexKind, key: bytes, version: int) -> bytes:
        """Front-end read of one index entry."""
        return self.get(storage_key(kind, key), version)

    def multi_query(
        self, kind: IndexKind, keys: List[bytes], version: int,
        missing: str = "raise",
    ) -> List:
        """Front-end batched read of several same-kind index entries."""
        return self.multi_get(
            [(storage_key(kind, key), version) for key in keys],
            missing=missing,
        )

    def scan(
        self,
        kind: IndexKind,
        start_key: bytes,
        end_key: bytes,
        version: Optional[int] = None,
    ):
        """Range query across the whole cluster, sorted by key.

        Keys hash across groups, so a range scan is a scatter-gather:
        every group scans its nodes and the results merge-sort.  This is
        the "advanced feature" the paper's sorted memtable buys that the
        hash-table stores in its related work cannot offer.  ``version``
        filters to one index version; None returns all live versions.
        """
        import heapq

        prefix = _KIND_PREFIX[kind]
        low = prefix + start_key
        high = prefix + end_key
        streams = [group.scan(low, high) for group in self.groups]
        for skey, item_version, value in heapq.merge(
            *streams, key=lambda row: (row[0], row[1])
        ):
            if version is not None and item_version != version:
                continue
            yield skey[len(prefix):], item_version, value

    # ------------------------------------------------------------------
    def bind_trace(self, track) -> None:
        """Attach a trace track; ingestion opens per-group spans on it."""
        self.trace = track

    def register_metrics(self, registry) -> None:
        """Register per-node counters across the storage stack.

        Naming folds the node path into dotted segments
        (``north-dc1/g0/n0`` -> ``north-dc1.g0.n0``) under four
        subsystem roots: ``mint.<node>.*`` (request tallies),
        ``qindb.<node>.*`` (engine counters, incl. ``read_cache.*`` and
        ``batch.*``), and ``ssd.<node>.*`` (firmware counters).  Every
        reader dereferences ``node.engine`` at call time, so views stay
        live across a crash/recovery that swaps the engine object; a
        counter the engine lacks (the LSM baseline has no read cache)
        reads 0.0 rather than failing the whole snapshot.

        The registry is retained: elastic membership changes register
        (and unregister) their node/group readers as they happen, so a
        node that joins mid-run shows up in the telemetry plane without
        a re-registration sweep.
        """
        self._registry = registry

        # Cluster-level wire-codec counters: what the decoder did, and
        # how often pipelined delivery parked a slice on a missing base.
        decoder_stats = self.wire_decoder.stats
        registry.register_many(
            f"mint.{self.name}.wire",
            {
                "slices_decoded": lambda: decoder_stats.slices_decoded,
                "entries_decoded": lambda: decoder_stats.entries_decoded,
                "deltas_applied": lambda: decoder_stats.deltas_applied,
                "full_values": lambda: decoder_stats.full_values,
                "bases_missing": lambda: decoder_stats.bases_missing,
                "decode_cpu_s": lambda: decoder_stats.decode_cpu_s,
                "slices_parked": lambda: self.slices_parked,
                "slices_unparked": lambda: self.slices_unparked,
                "parked_dropped": lambda: self.parked_dropped,
                "parked_now": lambda: len(self._parked_slices),
            },
        )
        if self.integrity is not None:
            self.integrity.register_metrics(
                registry, f"integrity.{self.name}"
            )

        # Cluster-level elastic gauges: topology shape and migration
        # pressure, one glance for "is a rebalance running".
        registry.register_many(
            f"elastic.{self.name}",
            {
                "groups": lambda: len(self.groups),
                "nodes": lambda: len(self.all_nodes),
                "slots_moving": lambda: len(self._moving_slots),
                "moving_keys": lambda: sum(
                    group.moving_keys for group in self.groups
                ),
            },
        )

        for group in self.groups:
            self._register_group_metrics(registry, group)

        for node in self.all_nodes:
            self._register_node_metrics(registry, node)

    def _register_group_metrics(self, registry, group: NodeGroup) -> None:
        # Group-level read-side counters, mirroring how the write path
        # exports per-node tallies: ``mint.<dc>.g<id>.group.*`` carries
        # the serving reads (single + batched), failovers, and sheds.
        registry.register_many(
            f"mint.{self.name}.g{group.group_id}.group",
            {
                "gets": lambda group=group: group.gets,
                "multi_gets": lambda group=group: group.multi_gets,
                "batched_gets": lambda group=group: group.batched_gets,
                "failover_gets": lambda group=group: group.failover_gets,
                "shed_gets": lambda group=group: group.shed_gets,
                # Health-plane gauges: live-replica fraction plus the
                # durability debt (parked writes, unreplayed repair
                # backlog) a bare healthy count hides.
                "healthy": lambda group=group: group.healthy_count,
                "nodes": lambda group=group: len(group.nodes),
                "parked_writes": lambda group=group: len(
                    group.pending_writes
                ),
                "repair_backlog": lambda group=group: sum(
                    len(ops) for ops in group.repair_backlog.values()
                ),
            },
        )
        # Per-group elastic gauges: membership, drain state, and the
        # migration backlog the health plane watches during rebalances.
        registry.register_many(
            f"elastic.{self.name}.g{group.group_id}",
            {
                "members": lambda group=group: len(group.nodes),
                "draining": lambda group=group: len(group.draining),
                "moving_keys": lambda group=group: group.moving_keys,
                "in_transition": lambda group=group: (
                    1.0 if group.in_transition else 0.0
                ),
                "slots": lambda group=group: len(self.slots_of(group)),
            },
        )

    def _register_node_metrics(self, registry, node: StorageNode) -> None:
        def engine_view(node, read):
            def value() -> float:
                try:
                    return float(read(node.engine))
                except AttributeError:
                    return 0.0
            return value

        path = node.name.replace("/", ".")
        registry.register_many(
            f"mint.{path}",
            {
                "puts": lambda node=node: node.puts,
                "gets": lambda node=node: node.gets,
                "skipped_gets": lambda node=node: node.skipped_gets,
                "missing_gets": lambda node=node: node.missing_gets,
                "deletes": lambda node=node: node.deletes,
                "recoveries": lambda node=node: node.recoveries,
                "up": lambda node=node: 1.0 if node.is_up else 0.0,
            },
        )
        registry.register_many(
            f"qindb.{path}",
            {
                "user_bytes_written": engine_view(
                    node, lambda e: e.user_bytes_written
                ),
                "user_bytes_read": engine_view(
                    node, lambda e: e.user_bytes_read
                ),
                "aof_bytes_appended": engine_view(
                    node, lambda e: e.aofs.bytes_appended
                ),
                "disk_used_bytes": engine_view(
                    node, lambda e: e.aofs.disk_used_bytes
                ),
                "gc_runs": engine_view(node, lambda e: e.gc_runs),
                "gc_bytes_reappended": engine_view(
                    node, lambda e: e.gc_bytes_reappended
                ),
                "memtable_items": engine_view(
                    node, lambda e: len(e.memtable)
                ),
                "read_cache.hits": engine_view(
                    node,
                    lambda e: e.read_cache.counters.hits if e.read_cache else 0,
                ),
                "read_cache.misses": engine_view(
                    node,
                    lambda e: e.read_cache.counters.misses
                    if e.read_cache
                    else 0,
                ),
                "read_cache.evictions": engine_view(
                    node,
                    lambda e: e.read_cache.counters.evictions
                    if e.read_cache
                    else 0,
                ),
                "read_cache.invalidated": engine_view(
                    node,
                    lambda e: e.read_cache.counters.invalidated
                    if e.read_cache
                    else 0,
                ),
                "batch.batches": engine_view(
                    node, lambda e: e.batch_counters.batches
                ),
                "batch.batched_puts": engine_view(
                    node, lambda e: e.batch_counters.batched_puts
                ),
            },
        )
        registry.register_many(
            f"ssd.{path}",
            {
                "host_pages_written": engine_view(
                    node, lambda e: e.device.counters.host_pages_written
                ),
                "host_pages_read": engine_view(
                    node, lambda e: e.device.counters.host_pages_read
                ),
                "gc_pages_written": engine_view(
                    node, lambda e: e.device.counters.gc_pages_written
                ),
                "blocks_erased": engine_view(
                    node, lambda e: e.device.counters.blocks_erased
                ),
                "host_write_ops": engine_view(
                    node, lambda e: e.device.counters.host_write_ops
                ),
                "gc_write_ops": engine_view(
                    node, lambda e: e.device.counters.gc_write_ops
                ),
                "busy_time_s": engine_view(
                    node, lambda e: e.device.counters.busy_time_s
                ),
                "device_now_s": engine_view(node, lambda e: e.device.now),
            },
        )

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Aggregate engine counters across all nodes.

        All values are scalar totals except ``gets_per_node``, a
        node-name → read-count map: the witness for whether replica
        reads actually spread across a group or pile onto one node.
        """
        totals: Dict[str, object] = {
            "nodes": 0,
            "healthy_nodes": 0,
            "puts": 0,
            "gets": 0,
            "deletes": 0,
            "user_bytes_written": 0,
            "disk_used_bytes": 0,
            "busy_time_s": 0.0,
            "put_batches": 0,
            "batched_puts": 0,
            "get_batches": 0,
            "batched_gets": 0,
            "multi_gets": 0,
            "failover_gets": 0,
            "shed_gets": 0,
            "missing_gets": 0,
            "device_write_ops": 0,
            "stale_slices_dropped": self.stale_slices_dropped,
            "wire_slices_decoded": self.wire_decoder.stats.slices_decoded,
            "wire_deltas_applied": self.wire_decoder.stats.deltas_applied,
            "wire_slices_parked": self.slices_parked,
            "wire_parked_dropped": self.parked_dropped,
        }
        for group in self.groups:
            totals["multi_gets"] += group.multi_gets
            totals["failover_gets"] += group.failover_gets
            totals["shed_gets"] += group.shed_gets
        gets_per_node: Dict[str, int] = {}
        skipped_gets_per_node: Dict[str, int] = {}
        for node in self.all_nodes:
            totals["nodes"] += 1
            totals["healthy_nodes"] += 1 if node.is_up else 0
            totals["puts"] += node.puts
            totals["gets"] += node.gets
            totals["deletes"] += node.deletes
            totals["missing_gets"] += node.missing_gets
            gets_per_node[node.name] = node.gets
            skipped_gets_per_node[node.name] = node.skipped_gets
            stats = node.engine.stats()
            totals["user_bytes_written"] += stats.user_bytes_written
            totals["disk_used_bytes"] += stats.disk_used_bytes
            totals["busy_time_s"] += node.engine.device.counters.busy_time_s
            # The LSM baseline has no batch path; its stats lack these.
            totals["put_batches"] += getattr(stats, "put_batches", 0)
            totals["batched_puts"] += getattr(stats, "batched_puts", 0)
            totals["get_batches"] += getattr(stats, "get_batches", 0)
            totals["batched_gets"] += getattr(stats, "batched_gets", 0)
            totals["device_write_ops"] += node.engine.device.counters.host_write_ops
        totals["gets_per_node"] = gets_per_node
        totals["skipped_gets_per_node"] = skipped_gets_per_node
        return totals

    @property
    def max_device_time(self) -> float:
        """The slowest node's device clock (cluster makespan proxy)."""
        return max(node.engine.device.now for node in self.all_nodes)
