"""One Mint storage node: a QinDB (or LSM) engine plus liveness state.

A node can *fail* (its memtable vanishes; only flash survives) and later
*recover* — for QinDB that is the paper's full AOF scan.  While a node is
down every operation raises :class:`~repro.errors.NodeDownError`; the
group layer routes around it.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.errors import KeyNotFoundError, NodeDownError
from repro.lsm.engine import LSMEngine
from repro.qindb.checkpoint import crash as qindb_crash
from repro.qindb.checkpoint import recover as qindb_recover
from repro.qindb.engine import QinDB

Engine = Union[QinDB, LSMEngine]
EngineFactory = Callable[[], Engine]


class StorageNode:
    """A named node wrapping one storage engine."""

    def __init__(self, name: str, engine: Engine) -> None:
        self.name = name
        self.engine: Engine = engine
        self.is_up = True
        self.puts = 0
        self.gets = 0
        #: reads routed away from this node because it was down
        self.skipped_gets = 0
        #: reads this node served while *up* but missing the key (a lost
        #: unflushed tail awaiting repair); the group fails them over
        self.missing_gets = 0
        self.deletes = 0
        self.recoveries = 0
        self.last_recovery_seconds = 0.0

    # ------------------------------------------------------------------
    def _check_up(self) -> None:
        if not self.is_up:
            raise NodeDownError(f"node {self.name} is down")

    def put(self, key: bytes, version: int, value: Optional[bytes]) -> None:
        self._check_up()
        self.engine.put(key, version, value)
        self.puts += 1

    def put_batch(self, items) -> None:
        """Store a batch of ``(key, version, value)`` triples.

        QinDB takes the whole batch in one engine call (coalesced
        appends, fingered memtable insertion); engines without a batch
        path (the LSM baseline) fall back to per-key puts — the batch
        API stays uniform either way.
        """
        self._check_up()
        engine_batch = getattr(self.engine, "put_batch", None)
        if engine_batch is not None:
            engine_batch(items)
        else:
            for key, version, value in items:
                self.engine.put(key, version, value)
        self.puts += len(items)

    def get(self, key: bytes, version: int) -> bytes:
        self._check_up()
        self.gets += 1
        return self.engine.get(key, version)

    def get_batch(self, items) -> list:
        """Fetch a batch of ``(key, version)`` values in input order.

        Mirrors :meth:`put_batch`: QinDB takes the whole batch in one
        engine call (deduplicated positioned reads, coalesced multi-page
        commands, amortized CPU); engines without a batch path (the LSM
        baseline) fall back to per-key gets.  A missing item reads as
        ``None`` rather than raising, so the group layer can fail over
        individual keys while the rest of the batch stands.
        """
        self._check_up()
        self.gets += len(items)
        engine_batch = getattr(self.engine, "get_batch", None)
        if engine_batch is not None:
            return engine_batch(items)
        values = []
        for key, version in items:
            try:
                values.append(self.engine.get(key, version))
            except KeyNotFoundError:
                values.append(None)
        return values

    def delete(self, key: bytes, version: int) -> None:
        self._check_up()
        self.engine.delete(key, version)
        self.deletes += 1

    def delete_batch(self, items) -> None:
        """Delete a batch of ``(key, version)`` pairs.

        Mirrors :meth:`put_batch`: QinDB takes the whole batch in one
        engine call (coalesced tombstone appends, one GC/checkpoint
        poll); engines without a batch path fall back to per-key
        deletes.
        """
        self._check_up()
        engine_batch = getattr(self.engine, "delete_batch", None)
        if engine_batch is not None:
            engine_batch(items)
        else:
            for key, version in items:
                self.engine.delete(key, version)
        self.deletes += len(items)

    def exists(self, key: bytes, version: int) -> bool:
        self._check_up()
        return self.engine.exists(key, version)

    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Power-fail the node: volatile state is gone."""
        self.is_up = False

    def recover(self) -> float:
        """Bring the node back; returns simulated recovery seconds.

        A QinDB node rebuilds its memtable and GC table by scanning every
        AOF (the paper's stated recovery cost); an LSM node replays its
        WAL (its SSTable metadata persists in a manifest).
        """
        if self.is_up:
            return 0.0
        device = self.engine.device
        started = device.now
        if isinstance(self.engine, QinDB):
            checkpoint = self.engine.latest_checkpoint
            checkpoint_valid = self.engine.checkpoint_valid
            aofs = qindb_crash(self.engine)
            self.engine = qindb_recover(
                aofs,
                config=self.engine.config,
                checkpoint=checkpoint,
                checkpoint_valid=checkpoint_valid,
            )
        else:
            from repro.lsm.recovery import crash as lsm_crash
            from repro.lsm.recovery import recover as lsm_recover

            self.engine = lsm_recover(lsm_crash(self.engine))
        self.is_up = True
        self.recoveries += 1
        self.last_recovery_seconds = device.now - started
        return self.last_recovery_seconds
