"""The QinDB storage engine: memtable + AOFs + lazy GC.

The engine wires the paper's pieces together over one simulated SSD:

* :meth:`QinDB.put` appends the (possibly value-less) record to the active
  AOF and inserts the skip-list item — no disk sorting, ever;
* :meth:`QinDB.put_batch` is the slice-granular ingest path: the same
  records back-to-back, sorted in RAM for skip-list insertion locality,
  with page programs coalesced and per-key bookkeeping amortised;
* :meth:`QinDB.get` resolves deduplicated items by *traceback*: walk to
  older versions of the same key until one carries a value;
* :meth:`QinDB.delete` only sets the ``d`` flag and updates the GC table
  (plus a small tombstone append so deletes survive recovery);
* the **lazy GC** collects a segment when its occupancy falls to the
  threshold, *deferring* while reads are in flight and free space remains;
  collection re-appends live records and dead-but-referenced records (a
  newer deduplicated version still resolves to them), then erases the
  whole segment — block-aligned, so the device GC never runs.

Time: every operation charges its I/O to the simulated device and its CPU
work (skip-list comparisons) to the device clock, so ``device.now`` deltas
are operation latencies and counter deltas over time are throughputs.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import (
    ConfigError,
    EngineClosedError,
    KeyNotFoundError,
    StorageError,
)
from repro.core.metrics import BatchCounters
from repro.qindb.aof import AofManager, RecordLocation
from repro.qindb.gctable import GCTable
from repro.qindb.memtable import IndexItem, Memtable
from repro.qindb.readcache import RecordCache
import struct
import zlib

from repro.qindb.records import (
    MAGIC,
    Record,
    RecordType,
    _CRC_PREFIX,
    _HEADER,
)
from repro.ssd.device import SimulatedSSD
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import TimingModel


@dataclass(frozen=True)
class QinDBConfig:
    """Tunables for one engine instance.

    Defaults follow the paper: 64 MB AOF segments, GC at 25% occupancy,
    lazy deferral while reads are in flight and free space remains.
    """

    segment_bytes: int = 64 * 1024 * 1024
    gc_occupancy_threshold: float = 0.25
    #: GC stops deferring once the device's free pool shrinks to this many
    #: blocks ("free disk space" in the paper's deferral rule).
    gc_defer_min_free_blocks: int = 16
    #: when False, GC never runs on its own (for ablations).
    gc_enabled: bool = True
    #: "native" = the paper's block-aligned path; "filesystem" routes the
    #: AOFs through the conventional FTL path (ablation A2).
    aof_backend: str = "native"
    #: checkpoint the memtable every this-many appended bytes (the
    #: paper's "checkpointed periodically"); None disables.
    checkpoint_interval_bytes: Optional[int] = None
    memtable_seed: int = 0x51DB
    #: CPU cost charged per skip-list comparison and per operation.
    cpu_per_step_s: float = 200e-9
    cpu_per_op_s: float = 2e-6
    #: byte budget for the record read cache; ``None``/``0`` disables it
    #: (the paper's configuration — every read is one positioned SSD
    #: access — and what keeps the reproduced figures unchanged).
    read_cache_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.segment_bytes <= 0:
            raise ConfigError("segment_bytes must be positive")
        if not 0.0 < self.gc_occupancy_threshold < 1.0:
            raise ConfigError("gc_occupancy_threshold must be in (0, 1)")
        if self.gc_defer_min_free_blocks < 0:
            raise ConfigError("gc_defer_min_free_blocks must be >= 0")
        if self.aof_backend not in ("native", "filesystem"):
            raise ConfigError(f"unknown aof_backend {self.aof_backend!r}")
        if (
            self.checkpoint_interval_bytes is not None
            and self.checkpoint_interval_bytes <= 0
        ):
            raise ConfigError("checkpoint_interval_bytes must be positive")
        if self.cpu_per_step_s < 0 or self.cpu_per_op_s < 0:
            raise ConfigError("CPU costs must be >= 0")
        if self.read_cache_bytes is not None and self.read_cache_bytes < 0:
            raise ConfigError("read_cache_bytes must be >= 0")


@dataclass
class QinDBStats:
    """A point-in-time snapshot of engine counters."""

    user_bytes_written: int
    user_bytes_read: int
    aof_bytes_appended: int
    disk_used_bytes: int
    memtable_items: int
    memtable_bytes: int
    segment_count: int
    gc_runs: int
    gc_bytes_reappended: int
    device_host_bytes_written: int
    device_total_bytes_written: int
    device_total_bytes_read: int
    hardware_write_amplification: float
    now: float
    # Record read cache (all zero while the cache is disabled).
    read_cache_hits: int = 0
    read_cache_misses: int = 0
    read_cache_evictions: int = 0
    read_cache_invalidated: int = 0
    read_cache_used_bytes: int = 0
    # Batched write path (all zero while only single puts are issued).
    put_batches: int = 0
    batched_puts: int = 0
    # Batched read path (all zero while only single gets are issued).
    get_batches: int = 0
    batched_gets: int = 0
    #: host program commands the device served; batched appends coalesce
    #: contiguous pages so this falls while pages written stays equal
    device_write_ops: int = 0

    @property
    def read_cache_hit_rate(self) -> float:
        """Hit share of all cache lookups (0.0 when the cache is off)."""
        lookups = self.read_cache_hits + self.read_cache_misses
        return self.read_cache_hits / lookups if lookups else 0.0

    @property
    def mean_put_batch_size(self) -> float:
        """Keys per batch across all put_batch calls (0.0 if none)."""
        return self.batched_puts / self.put_batches if self.put_batches else 0.0

    @property
    def mean_get_batch_size(self) -> float:
        """Keys per batch across all get_batch calls (0.0 if none)."""
        return self.batched_gets / self.get_batches if self.get_batches else 0.0

    @property
    def software_write_amplification(self) -> float:
        """Engine bytes appended per user byte written (>= 1.0)."""
        if self.user_bytes_written == 0:
            return 1.0
        return self.aof_bytes_appended / self.user_bytes_written

    @property
    def total_write_amplification(self) -> float:
        """Physical device bytes programmed per user byte written."""
        if self.user_bytes_written == 0:
            return 1.0
        return self.device_total_bytes_written / self.user_bytes_written


class QinDB:
    """The Quick-Indexing Database — one storage node's engine."""

    def __init__(
        self,
        device: SimulatedSSD,
        config: QinDBConfig | None = None,
    ) -> None:
        self.device = device
        self.config = config or QinDBConfig()
        self.aofs = AofManager(
            device,
            segment_bytes=self.config.segment_bytes,
            backend=self.config.aof_backend,
        )
        self.memtable = Memtable(seed=self.config.memtable_seed)
        self.gc_table = GCTable(threshold=self.config.gc_occupancy_threshold)
        self.read_cache: Optional[RecordCache] = (
            RecordCache(self.config.read_cache_bytes)
            if self.config.read_cache_bytes
            else None
        )
        self.user_bytes_written = 0
        self.user_bytes_read = 0
        self.gc_runs = 0
        self.gc_bytes_reappended = 0
        self.batch_counters = BatchCounters()
        self.reads_in_flight = 0
        self._gc_since_checkpoint = False
        self._closed = False
        self._sequence = 0
        #: the newest periodic checkpoint, if auto-checkpointing is on
        self.latest_checkpoint = None
        self._bytes_at_last_checkpoint = 0
        #: optional trace track (``obs.TraceTrack`` on the device clock)
        #: carrying GC-sweep and checkpoint spans
        self.trace = None

    def bind_trace(self, track) -> None:
        """Attach a trace track for engine-level spans.

        The track should run on *this engine's device clock* (e.g.
        ``tracer.track(name, clock=engine.device)``): GC and checkpoints
        happen in device time, not backbone-simulation time.
        """
        self.trace = track

    @classmethod
    def with_capacity(
        cls,
        capacity_bytes: int,
        config: QinDBConfig | None = None,
        timing: TimingModel | None = None,
    ) -> "QinDB":
        """Convenience constructor: engine over a fresh device."""
        geometry = SSDGeometry.from_capacity(capacity_bytes)
        return cls(SimulatedSSD(geometry, timing=timing), config=config)

    # ------------------------------------------------------------------
    # Mutated operations (paper Figure 2)
    # ------------------------------------------------------------------
    def put(self, key: bytes, version: int, value: Optional[bytes]) -> None:
        """Store ``(key/version, value)``; ``value=None`` means the pair
        was deduplicated upstream and arrives value-less."""
        self._check_open()
        if not isinstance(key, bytes) or not key:
            raise StorageError("key must be non-empty bytes")
        deduplicated = value is None
        sequence = self._next_sequence()
        if deduplicated:
            record = Record(RecordType.PUT_DEDUP, key, version, sequence=sequence)
        else:
            record = Record(
                RecordType.PUT_VALUE, key, version, value, sequence=sequence
            )
        location = self.aofs.append(record)
        self.gc_table.record_appended(location.segment_id, location.length)
        previous = self.memtable.put(
            key, version, location, deduplicated, sequence=sequence
        )
        if previous is not None and not previous.deleted:
            # The old record's bytes just became dead; an already-deleted
            # previous item was accounted dead when it was deleted.
            self.gc_table.record_dead(
                previous.location.segment_id, previous.location.length
            )
        self.user_bytes_written += len(key) + (0 if value is None else len(value))
        self._charge_cpu()
        self._maybe_gc()
        self._maybe_checkpoint()

    def put_batch(
        self, items: Sequence[Tuple[bytes, int, Optional[bytes]]]
    ) -> None:
        """Store a batch of ``(key, version, value)`` triples in one pass.

        The batched write path: validation happens once up front, records
        append back-to-back (sequence numbers follow input order, exactly
        as sequential puts would assign them) so the AOF/device layer can
        coalesce contiguous block-aligned pages into multi-page device
        programs, and the memtable insertion pre-sorts the batch by
        ``(key, version)`` so the skip list reuses its search finger
        between adjacent keys.  CPU charging, the GC check, and the
        checkpoint check run once per batch instead of once per key.

        The stored state — memtable items, sequence numbers, GC-table
        accounting, AOF bytes, recovery contents — is identical to
        issuing the same items through sequential :meth:`put` calls; only
        the simulated time and the batch counters differ.
        """
        self._check_open()
        for key, _version, _value in items:
            if not isinstance(key, bytes) or not key:
                raise StorageError("key must be non-empty bytes")
        if not items:
            return
        # Encode frames directly from the raw fields: same bytes as
        # ``encode_record(Record(...))``, with ``encode_frame``'s body
        # inlined — one call frame per *batch* instead of per record.
        # Field-range violations surface as the same StorageError via the
        # struct pack limits.
        put_value = int(RecordType.PUT_VALUE)
        put_dedup = int(RecordType.PUT_DEDUP)
        pack_prefix = _CRC_PREFIX.pack
        pack_header = _HEADER.pack
        crc32 = zlib.crc32
        join = b"".join
        magic = MAGIC
        encoded: List[bytes] = []
        add_encoded = encoded.append
        # Memtable entries are built here with a placeholder location and
        # patched once the AOF assigns real ones — the batch list is then
        # ready to sort and insert with no rebuild pass.
        make_item = IndexItem
        batch: List[Tuple[Tuple[bytes, int], IndexItem]] = []
        add_pending = batch.append
        user_bytes = 0
        sequence = self._sequence
        try:
            try:
                for key, version, value in items:
                    sequence += 1
                    if value is None:
                        # crc32(b"", state) == state: the empty value
                        # contributes nothing, so skip that update.
                        crc = crc32(
                            key,
                            crc32(pack_prefix(put_dedup, version, sequence)),
                        ) & 0xFFFFFFFF
                        add_encoded(
                            join(
                                (
                                    pack_header(
                                        magic, put_dedup, len(key), 0,
                                        version, sequence, crc,
                                    ),
                                    key,
                                )
                            )
                        )
                        add_pending(
                            ((key, version), make_item(None, True, False, sequence))
                        )
                        user_bytes += len(key)
                    else:
                        crc = crc32(
                            value,
                            crc32(
                                key,
                                crc32(
                                    pack_prefix(put_value, version, sequence)
                                ),
                            ),
                        ) & 0xFFFFFFFF
                        add_encoded(
                            join(
                                (
                                    pack_header(
                                        magic, put_value, len(key),
                                        len(value), version, sequence, crc,
                                    ),
                                    key,
                                    value,
                                )
                            )
                        )
                        add_pending(
                            ((key, version), make_item(None, False, False, sequence))
                        )
                        user_bytes += len(key) + len(value)
            except struct.error as exc:
                raise StorageError(
                    f"record field out of range: {exc}"
                ) from None
        finally:
            # A mid-loop encoding error still consumes the sequence
            # numbers it drew, exactly as sequential puts would have.
            self._sequence = sequence
        locations = self.aofs.append_encoded_batch(encoded)
        self.gc_table.record_appended_many(locations)
        for pair, location in zip(batch, locations):
            pair[1].location = location
        # Pre-sort for insertion locality.  The sort is stable, so a
        # (key, version) duplicated within the batch applies in input
        # order — last writer wins, matching sequential puts.
        batch.sort(key=itemgetter(0))
        previous_items = self.memtable.put_batch_pairs(batch)
        for previous in previous_items:
            if previous is not None and not previous.deleted:
                self.gc_table.record_dead(
                    previous.location.segment_id, previous.location.length
                )
        self.user_bytes_written += user_bytes
        self.batch_counters.batches += 1
        self.batch_counters.batched_puts += len(items)
        self._charge_cpu()
        self._maybe_gc()
        self._maybe_checkpoint()

    def get(self, key: bytes, version: int) -> bytes:
        """Fetch the value of ``(key, version)``, tracebacking through
        deduplicated versions; raises :class:`KeyNotFoundError` if the
        item is absent or deleted, or if the dedup chain is broken.

        Single descent: :meth:`Memtable.resolve` finds the item *and*
        its traceback target in one skip-list search plus neighbour
        hops, so a deduplicated read no longer pays a fresh O(log n)
        search per chain hop.
        """
        self._check_open()
        item, older = self.memtable.resolve(key, version)
        self._charge_cpu()
        if item is None or item.deleted:
            raise KeyNotFoundError(f"no live item for {key!r}/{version}")
        self.reads_in_flight += 1
        try:
            if item.has_value:
                value = self._read_value(item.location)
            elif older is not None:
                value = self._read_value(older.location)
            else:
                raise KeyNotFoundError(
                    f"dedup chain for {key!r}/{version} reaches no stored value"
                )
            self.user_bytes_read += len(key) + len(value)
            return value
        finally:
            self.reads_in_flight -= 1

    def get_batch(
        self, items: Sequence[Tuple[bytes, int]]
    ) -> List[Optional[bytes]]:
        """Fetch a batch of ``(key, version)`` values in one engine pass.

        The batched read path, mirroring what :meth:`put_batch` did for
        writes:

        * item resolution goes through the memtable's O(1) mirror dict
          (plus one :meth:`~repro.qindb.memtable.Memtable.resolve` per
          *distinct* deduplicated item for its traceback target), and one
          real skip-list search on the last item reproduces the batch's
          CPU charge — the same single-descent amortization
          :meth:`delete_batch` uses;
        * the read cache is probed first per distinct location, so a hot
          record cached once serves every batch slot that resolves to it;
        * cache misses deduplicate by :class:`RecordLocation` — a zipfian
          batch full of hot keys pays one positioned device read where
          the per-key loop pays one per request — and the survivors issue
          as coalesced multi-page reads
          (:meth:`~repro.qindb.aof.AofManager.read_many`), charging the
          device per *batch* instead of per key.

        Returns one entry per item, in input order: the value bytes, or
        ``None`` where :meth:`get` would raise
        :class:`~repro.errors.KeyNotFoundError` (absent, deleted, or a
        broken dedup chain) — per-slot sentinels let the replica layer
        fail over individual keys without losing the rest of the batch.
        The values and ``user_bytes_read`` accounting are byte-identical
        to sequential :meth:`get` calls; only the simulated time and the
        batch counters differ.
        """
        self._check_open()
        if not items:
            return []
        lookup = self.memtable.lookup
        resolve = self.memtable.resolve
        results: List[Optional[bytes]] = [None] * len(items)
        #: location -> result slots it satisfies (dedup happens here)
        need: Dict[RecordLocation, List[int]] = {}
        #: (key, version) -> traceback target, memoized across the batch
        older_cache: Dict[Tuple[bytes, int], Optional[IndexItem]] = {}
        for index, (key, version) in enumerate(items):
            item = lookup(key, version)
            if item is None or item.deleted:
                continue
            if item.has_value:
                need.setdefault(item.location, []).append(index)
                continue
            pair = (key, version)
            if pair in older_cache:
                older = older_cache[pair]
            else:
                _item, older = resolve(key, version)
                older_cache[pair] = older
            if older is not None:
                need.setdefault(older.location, []).append(index)
        # Only the final search's step count survives to _charge_cpu: one
        # real search on the last item stands in for the whole batch's
        # descent, exactly as the batched delete path charges.
        self.memtable.get(*items[-1])
        self._charge_cpu()
        self.reads_in_flight += 1
        try:
            cache = self.read_cache
            misses: List[RecordLocation] = []
            if cache is not None:
                for location in need:
                    value = cache.get(location)
                    if value is not None:
                        self.device.advance(self.config.cpu_per_op_s)
                        for index in need[location]:
                            results[index] = value
                    else:
                        misses.append(location)
            else:
                misses = list(need)
            if misses:
                records = self.aofs.read_many(misses)
                for location, record in zip(misses, records):
                    if cache is not None and record.value is not None:
                        cache.put(location, record.value)
                    for index in need[location]:
                        results[index] = record.value
            for index, (key, _version) in enumerate(items):
                value = results[index]
                if value is not None:
                    self.user_bytes_read += len(key) + len(value)
        finally:
            self.reads_in_flight -= 1
        self.batch_counters.get_batches += 1
        self.batch_counters.batched_gets += len(items)
        return results

    def delete(self, key: bytes, version: int) -> None:
        """Flag ``(key, version)`` deleted and feed the GC table.

        The data is *not* touched; reclamation happens when the segment's
        occupancy crosses the threshold and the lazy GC collects it.
        """
        self._check_open()
        item = self.memtable.get(key, version)
        self._charge_cpu()
        if item is None or item.deleted:
            raise KeyNotFoundError(f"no live item for {key!r}/{version}")
        item.deleted = True
        self.gc_table.record_dead(item.location.segment_id, item.location.length)
        # Persist a tombstone so the delete survives a recovery scan.
        tombstone = Record(
            RecordType.DELETE, key, version, sequence=self._next_sequence()
        )
        location = self.aofs.append(tombstone)
        self.gc_table.record_appended(location.segment_id, location.length)
        self.gc_table.record_dead(location.segment_id, location.length)
        self._maybe_gc()
        # Tombstones append bytes too: a delete-heavy phase must hit the
        # periodic checkpoint the same way a put-heavy one does.
        self._maybe_checkpoint()

    def delete_batch(self, items: Sequence[Tuple[bytes, int]]) -> None:
        """Flag a batch of ``(key, version)`` items deleted in one pass.

        The batched eviction path (dropping a retired index version
        deletes every key it ingested): all items are validated before
        any state changes — a missing or already-deleted item (including
        a duplicate within the batch) raises :class:`KeyNotFoundError`
        with the engine untouched — then the flags and GC accounting
        apply and the tombstones append back-to-back through
        ``append_batch``, coalescing their page programs the same way
        :meth:`put_batch` does.  CPU charging and the GC/checkpoint
        polls run once per batch.
        """
        self._check_open()
        if not items:
            return
        resolved: List[IndexItem] = []
        seen: set = set()
        lookup = self.memtable.lookup
        for key, version in items:
            item = lookup(key, version)
            if item is None or item.deleted or (key, version) in seen:
                raise KeyNotFoundError(f"no live item for {key!r}/{version}")
            seen.add((key, version))
            resolved.append(item)
        # Only the final search's step count survives to _charge_cpu, so
        # one real skip-list search on the last item reproduces the CPU
        # charge the per-item memtable.get() validation loop produced.
        self.memtable.get(*items[-1])
        # Tombstone framing inlined from ``encode_frame`` (empty value:
        # crc32(b"", state) == state), one call frame per batch.
        delete_type = int(RecordType.DELETE)
        pack_prefix = _CRC_PREFIX.pack
        pack_header = _HEADER.pack
        crc32 = zlib.crc32
        join = b"".join
        magic = MAGIC
        encoded: List[bytes] = []
        add_encoded = encoded.append
        dead_locations: List[RecordLocation] = []
        add_dead = dead_locations.append
        sequence = self._sequence
        try:
            try:
                for (key, version), item in zip(items, resolved):
                    item.deleted = True
                    add_dead(item.location)
                    sequence += 1
                    crc = crc32(
                        key,
                        crc32(pack_prefix(delete_type, version, sequence)),
                    ) & 0xFFFFFFFF
                    add_encoded(
                        join(
                            (
                                pack_header(
                                    magic, delete_type, len(key), 0,
                                    version, sequence, crc,
                                ),
                                key,
                            )
                        )
                    )
            except struct.error as exc:
                raise StorageError(
                    f"record field out of range: {exc}"
                ) from None
        finally:
            self._sequence = sequence
        self.gc_table.record_dead_many(dead_locations)
        locations = self.aofs.append_encoded_batch(encoded)
        self.gc_table.record_appended_many(locations)
        self.gc_table.record_dead_many(locations)
        self._charge_cpu()
        self._maybe_gc()
        self._maybe_checkpoint()

    def exists(self, key: bytes, version: int) -> bool:
        """Whether a live (non-deleted) item exists for (key, version)."""
        self._check_open()
        item = self.memtable.get(key, version)
        self._charge_cpu()
        return item is not None and not item.deleted

    def holds(self, key: bytes, version: int) -> bool:
        """Whether *any* record — live or deleted — is stored for
        ``(key, version)``.  Deleted-but-referenced dedup bases count:
        elastic migration uses this to check a chain base landed."""
        self._check_open()
        item = self.memtable.get(key, version)
        self._charge_cpu()
        return item is not None

    def chain_base(self, key: bytes, version: int):
        """Where a value-less ``(key, version)`` record's traceback lands.

        Returns ``(base_version, value, deleted)`` for the nearest older
        value-bearing record — the ``d`` flag is ignored, per the GC's
        referent rule, and reported so a migrator can reproduce the base
        *as stored* — or ``None`` when the record is absent or carries
        its own value (no base needed).  Raises
        :class:`KeyNotFoundError` when the record is value-less but no
        stored base resolves it (a partial copy: this replica cannot
        serve as a chain source).  Maintenance read, like :meth:`peek`:
        no user-read accounting.
        """
        self._check_open()
        target = self.memtable.get(key, version)
        self._charge_cpu()
        if target is None or target.has_value:
            return None
        base_version: Optional[int] = None
        base = None
        for item_version, item in self.memtable.versions_of(key):
            if item_version >= version:
                break
            if item.has_value:
                base_version, base = item_version, item
        if base is None:
            raise KeyNotFoundError(
                f"dedup chain for {key!r}/{version} reaches no stored value"
            )
        return (base_version, self._read_value(base.location), base.deleted)

    def peek(self, key: bytes, version: int):
        """Raw repair read: the record *as stored*, or ``None``.

        Returns ``(value, deduplicated)`` — ``(None, True)`` for a
        value-less deduplicated record — so replica repair can copy the
        exact representation to a rebuilding peer instead of materialising
        the dedup chain through :meth:`get` (which would inflate the peer
        and break byte-identical equivalence with an unfaulted run).
        Absent or deleted items return ``None``; no user-read accounting,
        since this is maintenance traffic, not a front-end read.
        """
        self._check_open()
        item = self.memtable.get(key, version)
        self._charge_cpu()
        if item is None or item.deleted:
            return None
        if not item.has_value:
            return (None, True)
        return (self._read_value(item.location), False)

    def scan(
        self, start_key: bytes, end_key: bytes
    ) -> Iterator[Tuple[bytes, int, bytes]]:
        """Yield ``(key, version, value)`` for live items in key range.

        This is the range-query capability hash-indexed stores lack (the
        paper's motivation for a *sorted* memtable).

        The generator holds a read-in-flight slot while it is being
        consumed, so the lazy GC's deferral rule sees an active scan the
        same way it sees an active get — without it, a concurrent put
        could trigger a collection that erases a segment the scan's
        pending items still point at.
        """
        self._check_open()
        self.reads_in_flight += 1
        try:
            for key, version, item in self.memtable.scan(start_key, end_key):
                if item.deleted:
                    continue
                if item.has_value:
                    yield key, version, self._read_value(item.location)
                else:
                    yield key, version, self._traceback(key, version)
        finally:
            self.reads_in_flight -= 1

    # ------------------------------------------------------------------
    def _read_value(self, location: RecordLocation) -> bytes:
        """Fetch a record's value: cache first, then the positioned read.

        A hit charges CPU only — no device I/O; a miss pays the device
        access and populates the cache, so a dedup chain's shared base
        record is cached once under its own location for every version
        that resolves to it.
        """
        cache = self.read_cache
        if cache is not None:
            value = cache.get(location)
            if value is not None:
                self.device.advance(self.config.cpu_per_op_s)
                return value
        record = self.aofs.read(location)
        if cache is not None and record.value is not None:
            cache.put(location, record.value)
        return record.value

    def _traceback(self, key: bytes, version: int) -> bytes:
        """The paper's traceback: nearest older version with a value.

        Older versions are consulted regardless of their ``d`` flag — a
        deleted record's value remains usable until GC reclaims it, which
        is exactly why GC must re-append referenced dead records.  One
        skip-list descent resolves the whole chain (see
        :meth:`Memtable.resolve`).
        """
        _item, older = self.memtable.resolve(key, version)
        self._charge_cpu()
        if older is None:
            raise KeyNotFoundError(
                f"dedup chain for {key!r}/{version} reaches no stored value"
            )
        return self._read_value(older.location)

    def _next_sequence(self) -> int:
        self._sequence += 1
        return self._sequence

    def _charge_cpu(self) -> None:
        steps = self.memtable.last_search_steps
        self.device.advance(
            self.config.cpu_per_op_s + steps * self.config.cpu_per_step_s
        )

    def _check_open(self) -> None:
        if self._closed:
            raise EngineClosedError("engine is closed")

    # ------------------------------------------------------------------
    # Lazy garbage collection
    # ------------------------------------------------------------------
    def _maybe_gc(self) -> None:
        if not self.config.gc_enabled:
            return
        exclude = set()
        active = self.aofs.active_segment_id
        if active is not None:
            exclude.add(active)
        victims = self.gc_table.victims(exclude=exclude)
        if not victims:
            return
        if self._should_defer():
            return
        # Recycle one file per trigger (the paper GCs per-file): the cost
        # amortizes across mutations instead of stalling writes in one
        # burst, which is what keeps QinDB's user-write rate smooth
        # (Figure 6b).
        self.collect_segment(victims[0])

    def _maybe_checkpoint(self) -> None:
        """Periodic checkpointing (paper: "it is checkpointed
        periodically"): snapshot the memtable every N appended bytes so
        a crash replays only the tail past the watermark."""
        interval = self.config.checkpoint_interval_bytes
        if interval is None:
            return
        appended = self.aofs.bytes_appended
        if appended - self._bytes_at_last_checkpoint < interval:
            return
        from repro.qindb.checkpoint import Checkpoint

        span = (
            self.trace.span("checkpoint", appended_bytes=appended)
            if self.trace is not None
            else nullcontext()
        )
        with span:
            if self.latest_checkpoint is not None:
                self.latest_checkpoint.discard()
            self.latest_checkpoint = Checkpoint.write(self)
        self._bytes_at_last_checkpoint = appended

    @property
    def checkpoint_valid(self) -> bool:
        """Whether :attr:`latest_checkpoint` still matches the AOFs.

        A GC run moves records, invalidating the checkpoint's locations;
        recovery then falls back to the full scan.
        """
        return self.latest_checkpoint is not None and not self._gc_since_checkpoint

    def _should_defer(self) -> bool:
        """The paper's lazy rule: defer while reads are in flight and
        there is still free disk space."""
        if self.reads_in_flight <= 0:
            return False
        return self.device.free_block_count > self.config.gc_defer_min_free_blocks

    def collect_segment(self, segment_id: int) -> None:
        """Collect one AOF segment (paper Figure 2, steps 3-6).

        Live records and dead records still referenced by newer
        deduplicated versions are re-appended (and the skip-list offsets
        updated); unreferenced dead records vanish, and their flagged
        items are dropped from the skip list.  Finally the segment is
        erased wholesale.
        """
        self._check_open()
        if segment_id == self.aofs.active_segment_id:
            raise StorageError("cannot collect the active segment")
        span = (
            self.trace.span("gc_sweep", segment=segment_id)
            if self.trace is not None
            else nullcontext()
        )
        with span:
            self._collect_segment(segment_id)

    def _collect_segment(self, segment_id: int) -> None:
        if self.read_cache is not None:
            # Surviving records move to new locations and the segment's
            # blocks are erased; cached values keyed into it must die
            # before the erase or a later lookup could serve bytes the
            # device no longer holds.
            self.read_cache.invalidate_segment(segment_id)
        segment = self.aofs.segment(segment_id)
        for offset, record in segment.scan():
            location = RecordLocation(segment_id, offset, record.encoded_size)
            if record.type is RecordType.DELETE:
                self._gc_tombstone(record)
                continue
            item = self.memtable.get(record.key, record.version)
            if item is None or item.location != location:
                continue  # superseded or already moved; dies with segment
            if not item.deleted:
                self._reappend(record, item)
            elif record.has_value and self._is_referenced(
                record.key, record.version
            ):
                # Dead but a newer deduplicated version resolves here.
                self._reappend(record, item)
            else:
                self.memtable.drop(record.key, record.version)
        self.gc_table.forget(segment_id)
        self.aofs.drop_segment(segment_id)
        self.gc_runs += 1
        self._gc_since_checkpoint = True

    def _gc_tombstone(self, record: Record) -> None:
        """Carry a delete tombstone forward while its target item lives."""
        item = self.memtable.get(record.key, record.version)
        if item is None or not item.deleted:
            return
        location = self.aofs.append(record)
        self.gc_table.record_appended(location.segment_id, location.length)
        self.gc_table.record_dead(location.segment_id, location.length)
        self.gc_bytes_reappended += location.length

    def _reappend(self, record: Record, item: IndexItem) -> None:
        location = self.aofs.append(record)
        self.gc_table.record_appended(location.segment_id, location.length)
        item.location = location
        if item.deleted:
            # Referenced-but-dead bytes stay "dead" in the accounting so
            # their new segment can still reach the GC threshold.
            self.gc_table.record_dead(location.segment_id, location.length)
        self.gc_bytes_reappended += location.length

    def _is_referenced(self, key: bytes, version: int) -> bool:
        """Does some newer deduplicated version resolve to this record?

        Walk newer versions of the key while they are deduplicated: a
        live deduplicated item means GET on it would traceback here.  The
        walk stops at the first value-bearing newer version, which shadows
        this record.
        """
        for _newer_version, item in self.memtable.newer_versions(key, version):
            if item.has_value:
                return False
            if not item.deleted:
                return True
        return False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> QinDBStats:
        """Snapshot every counter the experiments plot."""
        counters = self.device.counters
        cache = self.read_cache
        cache_counters = cache.counters if cache is not None else None
        return QinDBStats(
            read_cache_hits=cache_counters.hits if cache_counters else 0,
            read_cache_misses=cache_counters.misses if cache_counters else 0,
            read_cache_evictions=(
                cache_counters.evictions if cache_counters else 0
            ),
            read_cache_invalidated=(
                cache_counters.invalidated if cache_counters else 0
            ),
            read_cache_used_bytes=cache.used_bytes if cache else 0,
            put_batches=self.batch_counters.batches,
            batched_puts=self.batch_counters.batched_puts,
            get_batches=self.batch_counters.get_batches,
            batched_gets=self.batch_counters.batched_gets,
            device_write_ops=counters.host_write_ops,
            user_bytes_written=self.user_bytes_written,
            user_bytes_read=self.user_bytes_read,
            aof_bytes_appended=self.aofs.bytes_appended,
            disk_used_bytes=self.aofs.disk_used_bytes,
            memtable_items=len(self.memtable),
            memtable_bytes=self.memtable.approximate_bytes,
            segment_count=self.aofs.segment_count,
            gc_runs=self.gc_runs,
            gc_bytes_reappended=self.gc_bytes_reappended,
            device_host_bytes_written=counters.host_bytes_written,
            device_total_bytes_written=counters.total_bytes_written,
            device_total_bytes_read=counters.total_bytes_read,
            hardware_write_amplification=counters.hardware_write_amplification,
            now=self.device.now,
        )

    def flush(self) -> None:
        """Flush buffered partial pages to flash."""
        self.aofs.flush()

    def close(self) -> None:
        """Flush and mark the engine closed."""
        if not self._closed:
            self.aofs.flush()
            self._closed = True
