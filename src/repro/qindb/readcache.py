"""An LRU cache of decoded record values — QinDB's opt-in read cache.

The paper argues QinDB needs no *block* cache: the index is fully in
memory and a read is one positioned SSD access.  That one access still
pays the device's page-read latency on every GET, though, so a hot read
set leaves easy latency on the table.  This cache holds decoded record
*values* keyed by :class:`~repro.qindb.aof.RecordLocation` — a hit serves
from RAM and charges CPU only.

Two properties keep it honest:

* **Locations are never reused.**  Segment ids increase monotonically and
  a record's address is ``(segment_id, offset)``, so a cached entry can
  never alias a *different* record.  The only way an entry goes stale is
  its segment being collected — which is exactly why
  :meth:`~repro.qindb.engine.QinDB.collect_segment` calls
  :meth:`invalidate_segment` before the erase (the same GC-moves-data,
  cache-dies story the LSM block cache tells for compactions).
* **Dedup chains share one entry.**  Traceback resolves a value-less
  version to its base record's location; caching by *location* means every
  version of a hot dedup chain hits the same entry.

The counter/eviction idiom mirrors :class:`repro.lsm.blockcache.BlockCache`
(byte-bounded ``OrderedDict`` LRU), with the tallies factored into
:class:`repro.core.metrics.CacheCounters` so both caches report hit rates
the same way.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.core.metrics import CacheCounters
from repro.errors import ConfigError
from repro.qindb.aof import RecordLocation

#: accounted RAM per entry beyond the value bytes (location key, LRU links);
#: also what keeps zero-length values from being free and uncountable.
ENTRY_OVERHEAD_BYTES = 48


class RecordCache:
    """A byte-bounded LRU of decoded record values keyed by location."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ConfigError(f"cache capacity must be positive: {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._values: "OrderedDict[RecordLocation, bytes]" = OrderedDict()
        self._used_bytes = 0
        self.counters = CacheCounters()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._values)

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def hit_rate(self) -> float:
        return self.counters.hit_rate

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (per-phase measurements)."""
        self.counters.reset_lookups()

    @staticmethod
    def _entry_bytes(value: bytes) -> int:
        return len(value) + ENTRY_OVERHEAD_BYTES

    # ------------------------------------------------------------------
    def get(self, location: RecordLocation) -> Optional[bytes]:
        """Look up a value; None on miss.  Hits refresh LRU position."""
        value = self._values.get(location)
        if value is None:
            self.counters.misses += 1
            return None
        self._values.move_to_end(location)
        self.counters.hits += 1
        return value

    def put(self, location: RecordLocation, value: bytes) -> None:
        """Insert a value, evicting LRU entries to stay within capacity."""
        if self._entry_bytes(value) > self.capacity_bytes:
            return  # larger than the whole cache: not cacheable
        existing = self._values.pop(location, None)
        if existing is not None:
            self._used_bytes -= self._entry_bytes(existing)
        self._values[location] = value
        self._used_bytes += self._entry_bytes(value)
        while self._used_bytes > self.capacity_bytes:
            _victim, evicted = self._values.popitem(last=False)
            self._used_bytes -= self._entry_bytes(evicted)
            self.counters.evictions += 1

    def invalidate_segment(self, segment_id: int) -> int:
        """Drop every value of one AOF segment (GC is about to erase it)."""
        victims = [loc for loc in self._values if loc.segment_id == segment_id]
        for location in victims:
            self._used_bytes -= self._entry_bytes(self._values.pop(location))
        self.counters.invalidated += len(victims)
        return len(victims)

    def clear(self) -> None:
        """Drop everything (counted as invalidations)."""
        self.counters.invalidated += len(self._values)
        self._values.clear()
        self._used_bytes = 0
