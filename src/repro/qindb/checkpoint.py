"""Crash recovery: full AOF scan, optionally accelerated by a checkpoint.

The paper accepts a longer recovery in exchange for write throughput: "we
have to scan all AOFs for reconstruction of the memtable and the GC
table", mitigated by (a) periodic memtable checkpoints and (b) Mint's
replicas hiding a recovering node.  This module implements both the scan
and the checkpoint.

Ordering: the physical order of records on disk is *not* the logical
order of mutations, because GC re-appends old records into newer
segments.  Every record therefore carries its logical sequence number,
and the scan applies last-writer-wins by sequence:

* a ``PUT`` installs the item only if its sequence exceeds the sequence
  already installed for ``(key, version)``;
* a ``DELETE`` tombstone kills the item only if the tombstone's sequence
  exceeds the installed put's (a re-put after a delete resurrects the
  item, exactly as in the live engine);
* tombstones seen before their target (GC can move a put past its
  tombstone) are remembered and applied when the put arrives.

A checkpoint serializes the memtable and GC table to a native unit with an
AOF watermark; recovery loads it and replays only records past the
watermark — sealed segments older than the watermark are not even read,
which is what makes checkpoints cheaper than the full scan.  A GC run
invalidates outstanding checkpoints (it rewrites locations), falling back
to the full scan — the conservative choice the paper's "checkpointed
periodically" allows.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.metrics import BatchCounters
from repro.errors import CorruptionError
from repro.qindb.aof import AofManager, RecordLocation
from repro.qindb.engine import QinDB, QinDBConfig
from repro.qindb.gctable import GCTable
from repro.qindb.memtable import Memtable
from repro.qindb.readcache import RecordCache
from repro.qindb.records import RecordType
from repro.ssd.native import NativeBlockInterface, NativeUnit

#: key_len, version, sequence, segment, offset, length, flags
_ROW = struct.Struct("<H Q Q q q l B")
#: magic, item_count, max_sequence, watermark_seg, watermark_size
_HEADER = struct.Struct("<4s q q q q")
_MAGIC = b"QCKP"

_FLAG_DEDUP = 0x01
_FLAG_DELETED = 0x02


@dataclass
class Checkpoint:
    """A durable snapshot of the memtable, tied to an AOF watermark."""

    unit: NativeUnit
    watermark_segment: int
    watermark_size: int
    item_count: int
    max_sequence: int

    @classmethod
    def write(cls, engine: QinDB, tag: str = "checkpoint") -> "Checkpoint":
        """Serialize the engine's memtable to a fresh native unit."""
        engine.flush()
        active_id = engine.aofs.active_segment_id
        if active_id is None:
            watermark_segment, watermark_size = -1, 0
        else:
            watermark_segment = active_id
            watermark_size = engine.aofs.segment(active_id).size
        native = NativeBlockInterface(engine.device)
        unit = native.open_unit(tag=tag)
        count = 0
        rows = bytearray()
        for key, version, item in engine.memtable.items():
            flags = (_FLAG_DEDUP if item.deduplicated else 0) | (
                _FLAG_DELETED if item.deleted else 0
            )
            rows += _ROW.pack(
                len(key),
                version,
                item.sequence,
                item.location.segment_id,
                item.location.offset,
                item.location.length,
                flags,
            )
            rows += key
            count += 1
        unit.append(
            _HEADER.pack(
                _MAGIC, count, engine._sequence, watermark_segment, watermark_size
            )
        )
        unit.append(bytes(rows))
        unit.flush()
        engine._gc_since_checkpoint = False
        return cls(unit, watermark_segment, watermark_size, count, engine._sequence)

    @property
    def size(self) -> int:
        """Bytes the checkpoint occupies."""
        return self.unit.size

    def load_into(self, engine: QinDB) -> None:
        """Rebuild ``engine``'s memtable and GC table from this snapshot."""
        header = self.unit.read(0, _HEADER.size)
        magic, count, max_sequence, _wseg, _wsize = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise CorruptionError("bad checkpoint magic")
        body = self.unit.read(_HEADER.size, self.unit.size - _HEADER.size)
        offset = 0
        for _ in range(count):
            key_len, version, sequence, seg, off, length, flags = _ROW.unpack_from(
                body, offset
            )
            offset += _ROW.size
            key = bytes(body[offset : offset + key_len])
            offset += key_len
            location = RecordLocation(seg, off, length)
            engine.memtable.put(
                key, version, location, bool(flags & _FLAG_DEDUP), sequence
            )
            engine.gc_table.record_appended(seg, length)
            if flags & _FLAG_DELETED:
                engine.memtable.mark_deleted(key, version)
                engine.gc_table.record_dead(seg, length)
        engine._sequence = max(engine._sequence, max_sequence)

    def discard(self) -> None:
        """Erase the checkpoint's blocks."""
        self.unit.erase()


def crash(engine: QinDB) -> AofManager:
    """Simulate a power failure: the memtable vanishes, buffered partial
    pages are lost, and only what was programmed onto flash remains.

    Returns the surviving on-disk state (the AOF manager); feed it to
    :func:`recover`.
    """
    for segment in engine.aofs.segments:
        # Bytes still in the page-fill buffer never hit flash.
        segment._unit.discard_unprogrammed()
    engine._closed = True
    return engine.aofs


def recover(
    aofs: AofManager,
    config: Optional[QinDBConfig] = None,
    checkpoint: Optional[Checkpoint] = None,
    checkpoint_valid: bool = True,
) -> QinDB:
    """Rebuild a QinDB from surviving AOFs (plus an optional checkpoint).

    Without a checkpoint this is the paper's full scan: every segment is
    read sequentially and the memtable and GC table are reconstructed.
    With a valid checkpoint, only records past the watermark are replayed.
    """
    engine = QinDB.__new__(QinDB)
    engine.device = aofs.device
    engine.config = config or QinDBConfig()
    engine.aofs = aofs
    engine.memtable = Memtable(seed=engine.config.memtable_seed)
    engine.gc_table = GCTable(threshold=engine.config.gc_occupancy_threshold)
    # The read cache is volatile: a recovered node starts cold.
    engine.read_cache = (
        RecordCache(engine.config.read_cache_bytes)
        if engine.config.read_cache_bytes
        else None
    )
    engine.user_bytes_written = 0
    engine.user_bytes_read = 0
    engine.gc_runs = 0
    engine.gc_bytes_reappended = 0
    engine.batch_counters = BatchCounters()
    engine.reads_in_flight = 0
    engine._gc_since_checkpoint = False
    engine._closed = False
    engine._sequence = 0
    engine.latest_checkpoint = None
    engine._bytes_at_last_checkpoint = 0

    watermark_segment, watermark_size = -1, -1
    if checkpoint is not None and checkpoint_valid:
        checkpoint.load_into(engine)
        watermark_segment = checkpoint.watermark_segment
        watermark_size = checkpoint.watermark_size

    def replay_records():
        """Records past the watermark; fully-covered segments are not
        even read (this is what makes checkpoints cheaper than scans)."""
        for segment in aofs.segments:
            if segment.segment_id < watermark_segment:
                continue
            for offset, record in segment.scan():
                if (
                    segment.segment_id == watermark_segment
                    and offset < watermark_size
                ):
                    continue
                yield segment.segment_id, offset, record

    #: highest tombstone sequence seen per (key, version)
    pending_tombstones: Dict[Tuple[bytes, int], int] = {}
    for segment_id, offset, record in replay_records():
        engine._sequence = max(engine._sequence, record.sequence)
        key_version = (record.key, record.version)
        if record.type is RecordType.DELETE:
            previous_tomb = pending_tombstones.get(key_version, -1)
            pending_tombstones[key_version] = max(previous_tomb, record.sequence)
            item = engine.memtable.get(record.key, record.version)
            if (
                item is not None
                and not item.deleted
                and record.sequence > item.sequence
            ):
                engine.memtable.mark_deleted(record.key, record.version)
                engine.gc_table.record_dead(
                    item.location.segment_id, item.location.length
                )
            # Account the tombstone's own bytes (appended and dead).
            size = record.encoded_size
            engine.gc_table.record_appended(segment_id, size)
            engine.gc_table.record_dead(segment_id, size)
            continue

        location = RecordLocation(segment_id, offset, record.encoded_size)
        engine.gc_table.record_appended(segment_id, location.length)
        existing = engine.memtable.get(record.key, record.version)
        if existing is not None and record.sequence <= existing.sequence:
            # A stale physical copy (GC duplicate); its bytes are dead.
            engine.gc_table.record_dead(segment_id, location.length)
            continue
        previous = engine.memtable.put(
            record.key,
            record.version,
            location,
            record.type is RecordType.PUT_DEDUP,
            sequence=record.sequence,
        )
        if previous is not None and not previous.deleted:
            engine.gc_table.record_dead(
                previous.location.segment_id, previous.location.length
            )
        tombstone_sequence = pending_tombstones.get(key_version, -1)
        if tombstone_sequence > record.sequence:
            # GC moved this put physically past its tombstone; the
            # delete still logically follows it.
            engine.memtable.mark_deleted(record.key, record.version)
            engine.gc_table.record_dead(segment_id, location.length)
    return engine
