"""QinDB's memtable: sorted ``(key, version)`` items over a skip list.

Each item is the paper's skip-list entry — the AOF offset of the record
plus the ``r`` flag (``deduplicated``: the value field was removed
upstream) and the ``d`` flag (``deleted``).  Items of one key sort
adjacent in increasing version order, so:

* GET's *traceback* ("find the nearest older version that still carries a
  value") is a descending neighbour walk, and
* GC's *referent check* ("is this dead record still resolved to by a newer
  deduplicated version?") is an ascending neighbour walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.qindb.aof import RecordLocation
from repro.qindb.skiplist import SkipListMap

#: a (key, version) composite; tuples compare key-first then version,
#: giving exactly the paper's "same keys naturally aggregated in the order
#: of increasing version numbers".
ItemKey = Tuple[bytes, int]


@dataclass(slots=True)
class IndexItem:
    """One memtable entry: where the record lives, plus the two flags."""

    location: RecordLocation
    deduplicated: bool = False  # the paper's ``r`` flag
    deleted: bool = False  # the paper's ``d`` flag
    #: sequence number of the put that created this item (recovery order)
    sequence: int = 0

    @property
    def has_value(self) -> bool:
        """Whether the record at ``location`` carries a value field."""
        return not self.deduplicated


class Memtable:
    """The in-memory index: every live (key, version) the engine knows."""

    def __init__(self, seed: int = 0x51DB) -> None:
        self._items = SkipListMap(seed=seed)
        #: (key, version) -> item, mirroring the skip list for O(1) point
        #: lookups that do *not* model a search (see :meth:`lookup`)
        self._by_key: Dict[ItemKey, IndexItem] = {}
        #: approximate resident bytes (keys + per-item overhead), the ``M``
        #: term in the RUM accounting
        self.approximate_bytes = 0

    def __len__(self) -> int:
        return len(self._items)

    # ------------------------------------------------------------------
    def put(
        self,
        key: bytes,
        version: int,
        location: RecordLocation,
        deduplicated: bool,
        sequence: int = 0,
    ) -> Optional[IndexItem]:
        """Insert or replace the item for (key, version).

        Returns the *previous* item if one was replaced (its record bytes
        just became dead), else None.
        """
        item_key: ItemKey = (key, version)
        # The previous item comes from the mirror dict: the skip-list
        # insert below performs the one search whose step count the CPU
        # cost model charges, exactly as before.
        previous = self._by_key.get(item_key)
        item = IndexItem(
            location=location, deduplicated=deduplicated, sequence=sequence
        )
        if self._items.insert(item_key, item):
            self.approximate_bytes += len(key) + 8 + 40
        self._by_key[item_key] = item
        return previous

    def put_batch(
        self,
        entries: list,
    ) -> list:
        """Insert a pre-sorted batch of items in one fingered pass.

        ``entries`` is a list of ``(key, version, location, deduplicated,
        sequence)`` tuples sorted by ``(key, version)`` (stable, so a
        duplicated pair applies in input order — last writer wins, same
        as sequential puts).  Returns the replaced previous
        :class:`IndexItem` (or None) per entry, in the same order.
        """
        return self.put_batch_pairs(
            [
                (
                    (key, version),
                    IndexItem(location, deduplicated, False, sequence),
                )
                for key, version, location, deduplicated, sequence in entries
            ]
        )

    def put_batch_pairs(self, pairs: list) -> list:
        """:meth:`put_batch` over pre-built ``(item_key, item)`` pairs.

        The hot ingest path: the engine constructs the
        ``((key, version), IndexItem)`` pairs directly (sorted by item
        key, stable), skipping the intermediate 5-tuple unpack.
        """
        results = self._items.insert_batch(pairs)
        # dict.update consumes the (item_key, item) pairs in one C loop;
        # input order means a duplicated key applies last-writer-wins,
        # same as the per-item assignment did.
        self._by_key.update(pairs)
        self.approximate_bytes += sum(
            len(pair[0][0]) + 48
            for pair, result in zip(pairs, results)
            if result[0]
        )
        return [replaced for _was_new, replaced in results]

    def get(self, key: bytes, version: int) -> Optional[IndexItem]:
        """The item for (key, version), or None.

        Performs a real skip-list search so
        :attr:`last_search_steps` models the lookup's cost.
        """
        return self._items.get((key, version), default=None)

    def lookup(self, key: bytes, version: int) -> Optional[IndexItem]:
        """O(1) point lookup via the mirror dict.

        Does NOT touch :attr:`last_search_steps` — for callers that
        validate many items but charge only one search (the batched
        delete path), or that account their cost elsewhere.
        """
        return self._by_key.get((key, version))

    def mark_deleted(self, key: bytes, version: int) -> Optional[IndexItem]:
        """Set the ``d`` flag; returns the item, or None if absent."""
        item = self.get(key, version)
        if item is not None:
            item.deleted = True
        return item

    def drop(self, key: bytes, version: int) -> None:
        """Remove the item entirely (GC of an unreferenced dead record)."""
        self._items.remove((key, version))
        del self._by_key[(key, version)]
        self.approximate_bytes -= len(key) + 8 + 40

    def resolve(
        self, key: bytes, version: int
    ) -> Tuple[Optional[IndexItem], Optional[IndexItem]]:
        """Single-descent read path: the item *and* its traceback target.

        One skip-list search descends to the start of ``key``'s version
        chain (the 1-tuple ``(key,)`` sorts before every ``(key, v)``,
        so it reaches the chain regardless of the smallest stored
        version), then level-0 neighbour hops walk the chain in
        ascending version order.  Along the way the newest value-bearing
        item below ``version`` is remembered — exactly the record GET's
        traceback would resolve a deduplicated item to (the ``d`` flag
        is ignored, per the paper's referent rule).

        Returns ``(item, older)``: the item at ``(key, version)`` or
        None, and the nearest older value-bearing item or None.  The
        walk hops are charged into :attr:`last_search_steps` so the CPU
        cost model sees one search plus the hops — not one fresh
        O(log n) search per hop as the old per-hop traceback paid.
        """
        target: Optional[IndexItem] = None
        older: Optional[IndexItem] = None
        hops = 0
        for (item_key, item_version), item in self._items.items_from(
            (key,), inclusive=True
        ):
            if item_key != key or item_version > version:
                break
            if item_version == version:
                target = item
                break  # every older version was already walked
            if item.has_value:
                older = item
            hops += 1
        self._items.charge_steps(hops)
        return target, older

    # ------------------------------------------------------------------
    # Neighbourhood walks
    # ------------------------------------------------------------------
    def older_versions(
        self, key: bytes, version: int
    ) -> Iterator[Tuple[int, IndexItem]]:
        """Items of ``key`` with smaller versions, newest first."""
        for (item_key, item_version), item in self._items.items_before(
            (key, version)
        ):
            if item_key != key:
                return
            yield item_version, item

    def newer_versions(
        self, key: bytes, version: int
    ) -> Iterator[Tuple[int, IndexItem]]:
        """Items of ``key`` with larger versions, oldest first."""
        for (item_key, item_version), item in self._items.items_from(
            (key, version), inclusive=False
        ):
            if item_key != key:
                return
            yield item_version, item

    def versions_of(self, key: bytes) -> Iterator[Tuple[int, IndexItem]]:
        """All items of ``key`` in increasing version order."""
        for (item_key, item_version), item in self._items.items_from(
            (key, 0), inclusive=True
        ):
            if item_key != key:
                return
            yield item_version, item

    def latest_version(self, key: bytes) -> Optional[Tuple[int, IndexItem]]:
        """The newest item of ``key``, or None."""
        entry = self._items.lower((key, 0xFFFFFFFFFFFFFFFF + 1))
        if entry is None:
            return None
        (item_key, item_version), item = entry
        if item_key != key:
            return None
        return item_version, item

    def scan(
        self, start_key: bytes, end_key: bytes
    ) -> Iterator[Tuple[bytes, int, IndexItem]]:
        """Items with ``start_key <= key < end_key``, sorted."""
        for (item_key, item_version), item in self._items.range(
            (start_key, 0), (end_key, 0)
        ):
            yield item_key, item_version, item

    def items(self) -> Iterator[Tuple[bytes, int, IndexItem]]:
        """Every item in sorted order."""
        for (item_key, item_version), item in self._items:
            yield item_key, item_version, item

    @property
    def last_search_steps(self) -> int:
        """Comparisons in the most recent skip-list search (cost model)."""
        return self._items.last_search_steps
