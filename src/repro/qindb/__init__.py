"""QinDB — the paper's per-node storage engine.

QinDB replaces the LSM-tree with:

* a **memtable**: an in-memory skip list of ``(key, version)`` items, each
  holding the AOF location of the record plus the paper's two flags —
  ``r`` (the value was removed by deduplication) and ``d`` (deleted);
* **append-only files (AOFs)**: fixed-size (64 MB) segments written
  block-aligned through the SSD's native interface, so sorting never
  touches the disk and hardware write amplification is eliminated;
* a **lazy GC**: an in-memory occupancy table per segment; a segment is
  recycled only when its live ratio falls to the threshold (25%), and even
  then the collection is deferred while reads are in flight and free disk
  space remains.  GC re-appends live records *and* dead records that later
  deduplicated versions still resolve to.

The mutated operations (paper Figure 2) are :meth:`QinDB.put` (accepts
value-less deduplicated pairs), :meth:`QinDB.get` (tracebacks through
deduplicated versions to the newest stored value), and :meth:`QinDB.delete`
(flag-only, feeding the GC table).
"""

from repro.qindb.aof import AofManager, AofSegment, RecordLocation
from repro.qindb.checkpoint import Checkpoint
from repro.qindb.engine import QinDB, QinDBConfig
from repro.qindb.gctable import GCTable, SegmentOccupancy
from repro.qindb.memtable import IndexItem, Memtable
from repro.qindb.readcache import RecordCache
from repro.qindb.records import Record, RecordType, decode_record, encode_record
from repro.qindb.skiplist import SkipListMap

__all__ = [
    "AofManager",
    "AofSegment",
    "Checkpoint",
    "GCTable",
    "IndexItem",
    "Memtable",
    "QinDB",
    "QinDBConfig",
    "Record",
    "RecordCache",
    "RecordLocation",
    "RecordType",
    "SegmentOccupancy",
    "SkipListMap",
    "decode_record",
    "encode_record",
]
