"""The in-memory GC table: per-segment occupancy accounting.

The paper's DEL path "updates the occupancy ratio of the corresponding
file containing the deleted key and value, which are maintained in a GC
table in the memory", and GC fires when a file's occupancy reaches the
threshold (25% in the evaluation).  This module is that table; the actual
collection lives in the engine, which owns the memtable and the AOFs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import StorageError


@dataclass
class SegmentOccupancy:
    """Live/dead byte accounting for one AOF segment."""

    segment_id: int
    total_bytes: int = 0
    dead_bytes: int = 0

    @property
    def live_bytes(self) -> int:
        return self.total_bytes - self.dead_bytes

    @property
    def occupancy(self) -> float:
        """Fraction of appended bytes still live (1.0 for empty segments)."""
        if self.total_bytes == 0:
            return 1.0
        return self.live_bytes / self.total_bytes


class GCTable:
    """Tracks occupancy per segment and nominates GC victims."""

    def __init__(self, threshold: float = 0.25) -> None:
        if not 0.0 < threshold < 1.0:
            raise StorageError(f"GC threshold must be in (0, 1), got {threshold}")
        self.threshold = threshold
        self._segments: Dict[int, SegmentOccupancy] = {}
        #: segment ids currently at or below the threshold — maintained
        #: on every accounting change so :meth:`victims` scans only the
        #: (few) collectable rows instead of every live segment per call
        self._below: set = set()

    # ------------------------------------------------------------------
    def entry(self, segment_id: int) -> SegmentOccupancy:
        """The accounting row for a segment, created on first touch."""
        row = self._segments.get(segment_id)
        if row is None:
            row = SegmentOccupancy(segment_id)
            self._segments[segment_id] = row
        return row

    def _update_membership(self, row: SegmentOccupancy) -> None:
        # Same expression as :meth:`victims` used when it scanned every
        # row, so membership is exactly the set that scan would select.
        if row.total_bytes and row.occupancy <= self.threshold:
            self._below.add(row.segment_id)
        else:
            self._below.discard(row.segment_id)

    def record_appended(self, segment_id: int, nbytes: int) -> None:
        """Account freshly appended record bytes to a segment."""
        row = self.entry(segment_id)
        row.total_bytes += nbytes
        if row.dead_bytes:
            self._update_membership(row)

    def record_appended_many(self, locations) -> None:
        """Batch :meth:`record_appended`: one row update per segment.

        Equivalent to calling :meth:`record_appended` per location —
        appends only ever sum into ``total_bytes`` — but a slice-sized
        batch touches each segment row once instead of once per record.
        """
        if not locations:
            return
        first = locations[0].segment_id
        if locations[-1].segment_id == first:
            # Slice-sized appends almost always land in one segment.
            self.record_appended(
                first, sum(location.length for location in locations)
            )
            return
        totals: Dict[int, int] = {}
        get = totals.get
        for location in locations:
            segment_id = location.segment_id
            totals[segment_id] = get(segment_id, 0) + location.length
        for segment_id, nbytes in totals.items():
            self.record_appended(segment_id, nbytes)

    def record_dead_many(self, locations) -> None:
        """Batch :meth:`record_dead` for locations that died together."""
        totals: Dict[int, int] = {}
        get = totals.get
        for location in locations:
            segment_id = location.segment_id
            totals[segment_id] = get(segment_id, 0) + location.length
        for segment_id, nbytes in totals.items():
            self.record_dead(segment_id, nbytes)

    def record_dead(self, segment_id: int, nbytes: int) -> None:
        """Account record bytes that just became dead (delete/overwrite)."""
        row = self.entry(segment_id)
        row.dead_bytes += nbytes
        if row.dead_bytes > row.total_bytes:
            raise StorageError(
                f"segment {segment_id} accounting corrupt: "
                f"dead {row.dead_bytes} > total {row.total_bytes}"
            )
        self._update_membership(row)

    def forget(self, segment_id: int) -> None:
        """Drop a segment's row after the segment is erased."""
        self._segments.pop(segment_id, None)
        self._below.discard(segment_id)

    # ------------------------------------------------------------------
    def occupancy(self, segment_id: int) -> float:
        """Occupancy ratio of one segment (1.0 if never touched)."""
        row = self._segments.get(segment_id)
        return 1.0 if row is None else row.occupancy

    def victims(self, exclude: frozenset | set = frozenset()) -> List[int]:
        """Segments at or below the occupancy threshold, worst first."""
        below = self._below
        if not below:
            return []
        segments = self._segments
        candidates = [
            segments[segment_id]
            for segment_id in below
            if segment_id not in exclude
        ]
        candidates.sort(key=lambda row: (row.occupancy, row.segment_id))
        return [row.segment_id for row in candidates]

    def snapshot(self) -> Dict[int, float]:
        """segment_id -> occupancy, for monitoring and tests."""
        return {sid: row.occupancy for sid, row in self._segments.items()}
