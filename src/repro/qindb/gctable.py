"""The in-memory GC table: per-segment occupancy accounting.

The paper's DEL path "updates the occupancy ratio of the corresponding
file containing the deleted key and value, which are maintained in a GC
table in the memory", and GC fires when a file's occupancy reaches the
threshold (25% in the evaluation).  This module is that table; the actual
collection lives in the engine, which owns the memtable and the AOFs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import StorageError


@dataclass
class SegmentOccupancy:
    """Live/dead byte accounting for one AOF segment."""

    segment_id: int
    total_bytes: int = 0
    dead_bytes: int = 0

    @property
    def live_bytes(self) -> int:
        return self.total_bytes - self.dead_bytes

    @property
    def occupancy(self) -> float:
        """Fraction of appended bytes still live (1.0 for empty segments)."""
        if self.total_bytes == 0:
            return 1.0
        return self.live_bytes / self.total_bytes


class GCTable:
    """Tracks occupancy per segment and nominates GC victims."""

    def __init__(self, threshold: float = 0.25) -> None:
        if not 0.0 < threshold < 1.0:
            raise StorageError(f"GC threshold must be in (0, 1), got {threshold}")
        self.threshold = threshold
        self._segments: Dict[int, SegmentOccupancy] = {}

    # ------------------------------------------------------------------
    def entry(self, segment_id: int) -> SegmentOccupancy:
        """The accounting row for a segment, created on first touch."""
        row = self._segments.get(segment_id)
        if row is None:
            row = SegmentOccupancy(segment_id)
            self._segments[segment_id] = row
        return row

    def record_appended(self, segment_id: int, nbytes: int) -> None:
        """Account freshly appended record bytes to a segment."""
        self.entry(segment_id).total_bytes += nbytes

    def record_dead(self, segment_id: int, nbytes: int) -> None:
        """Account record bytes that just became dead (delete/overwrite)."""
        row = self.entry(segment_id)
        row.dead_bytes += nbytes
        if row.dead_bytes > row.total_bytes:
            raise StorageError(
                f"segment {segment_id} accounting corrupt: "
                f"dead {row.dead_bytes} > total {row.total_bytes}"
            )

    def forget(self, segment_id: int) -> None:
        """Drop a segment's row after the segment is erased."""
        self._segments.pop(segment_id, None)

    # ------------------------------------------------------------------
    def occupancy(self, segment_id: int) -> float:
        """Occupancy ratio of one segment (1.0 if never touched)."""
        row = self._segments.get(segment_id)
        return 1.0 if row is None else row.occupancy

    def victims(self, exclude: frozenset | set = frozenset()) -> List[int]:
        """Segments at or below the occupancy threshold, worst first."""
        candidates = [
            row
            for row in self._segments.values()
            if row.segment_id not in exclude and row.occupancy <= self.threshold
        ]
        candidates.sort(key=lambda row: (row.occupancy, row.segment_id))
        return [row.segment_id for row in candidates]

    def snapshot(self) -> Dict[int, float]:
        """segment_id -> occupancy, for monitoring and tests."""
        return {sid: row.occupancy for sid, row in self._segments.items()}
