"""A skip list (Pugh, CACM 1990) — the paper's memtable data structure.

A probabilistic sorted map with expected O(log n) search, insert, and
delete, plus ordered traversal from any key.  QinDB keys it by
``(key_bytes, version)`` so all versions of one key sit adjacent "in the
order of increasing version numbers", which is what makes GET's traceback
and GC's referent checks cheap neighbourhood walks.

The level generator is seeded, so structures (and therefore comparison
counts and simulated search costs) are reproducible.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import KeyNotFoundError

MAX_LEVEL = 32
_P = 0.25


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Any, value: Any, level: int) -> None:
        self.key = key
        self.value = value
        self.forward: List[Optional["_Node"]] = [None] * level


class SkipListMap:
    """A sorted mapping with ordered iteration and neighbour queries."""

    def __init__(self, seed: int = 0x51DB) -> None:
        self._head = _Node(None, None, MAX_LEVEL)
        self._level = 1
        self._length = 0
        self._random = random.Random(seed)
        #: comparisons performed by the most recent search, for cost models
        self.last_search_steps = 0
        #: sum of every live node's height — lets :meth:`insert_batch`
        #: compute its charged hop count in closed form (see there)
        self._total_heights = 0

    def __len__(self) -> int:
        return self._length

    def __contains__(self, key: Any) -> bool:
        return self._find(key) is not None

    # ------------------------------------------------------------------
    def _random_level(self) -> int:
        level = 1
        while level < MAX_LEVEL and self._random.random() < _P:
            level += 1
        return level

    def _find_predecessors(self, key: Any) -> List[_Node]:
        """Per-level nodes after which ``key`` would be inserted."""
        update: List[_Node] = [self._head] * MAX_LEVEL
        node = self._head
        steps = 0
        level = self._level - 1
        while level >= 0:
            next_node = node.forward[level]
            while next_node is not None and next_node.key < key:
                node = next_node
                next_node = node.forward[level]
                steps += 1
            update[level] = node
            level -= 1
        self.last_search_steps = steps + self._level
        return update

    def charge_steps(self, steps: int) -> None:
        """Add neighbour-walk hops to :attr:`last_search_steps`.

        Callers that descend once and then walk level-0 neighbours (the
        single-descent traceback) account the hops here so the cost model
        sees descent + walk as one search.
        """
        self.last_search_steps += steps

    def _find(self, key: Any) -> Optional[_Node]:
        # Same descent (and step accounting) as _find_predecessors, but
        # point lookups skip materialising the 32-slot update list.
        node = self._head
        steps = 0
        level = self._level - 1
        while level >= 0:
            next_node = node.forward[level]
            while next_node is not None and next_node.key < key:
                node = next_node
                next_node = node.forward[level]
                steps += 1
            level -= 1
        self.last_search_steps = steps + self._level
        node = node.forward[0]
        if node is not None and node.key == key:
            return node
        return None

    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> bool:
        """Insert or replace; returns True if the key was new."""
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is not None and node.key == key:
            node.value = value
            return False
        level = self._random_level()
        if level > self._level:
            self._level = level
        node = _Node(key, value, level)
        for i in range(level):
            node.forward[i] = update[i].forward[i]
            update[i].forward[i] = node
        self._length += 1
        self._total_heights += level
        return True

    def insert_batch(
        self, pairs: List[Tuple[Any, Any]]
    ) -> List[Tuple[bool, Any]]:
        """Insert ascending ``(key, value)`` pairs, reusing the search
        finger between adjacent keys.

        Keys must be non-descending (equal keys replace in order, last
        writer wins).  Instead of descending from the head for every key,
        each per-level search resumes from the previous key's predecessor
        at that level — adjacent keys cost only the hops *between* them,
        so a sorted batch pays one O(log n) descent plus O(batch span)
        walk rather than len(batch) full descents.

        Returns one ``(was_new, previous_value)`` per pair
        (``previous_value`` is None for fresh keys).  The whole batch
        charges :attr:`last_search_steps` as a single search: total hops
        plus one descent's level count.

        The charged hop count has a closed form.  A sorted batch's
        search finger visits every level-``l`` node below the batch's
        largest key exactly once per level it appears on, so the total
        is simply the sum of the heights of all nodes (at batch end)
        whose key precedes the largest batch key.  That lets this method
        skip the O(span) finger walk entirely: each key is placed with
        an ordinary O(log n) descent, and the charge comes from the
        maintained :attr:`_total_heights` minus a short walk over the
        nodes *past* the largest key — identical ``last_search_steps``
        to the walked form, without touching the span.
        """
        if not pairs:
            self.last_search_steps = self._level
            return []
        results: List[Tuple[bool, Any]] = []
        append_result = results.append
        head = self._head
        update: List[_Node] = [head] * MAX_LEVEL
        #: per-level search finger: ``nexts[level]`` mirrors
        #: ``update[level].forward[level]`` so levels whose successor is
        #: already past the next key cost one cached compare
        nexts: List[Optional[_Node]] = list(head.forward)
        previous_key: Any = None
        # Hot loop: locals bound once per batch.  The inlined level draw
        # makes the identical sequence of ``random()`` calls the
        # out-of-line ``_random_level`` would, so seeded structures are
        # unchanged.
        random_fn = self._random.random
        new_node = object.__new__
        node_cls = _Node
        for key, value in pairs:
            if previous_key is not None and key < previous_key:
                raise ValueError("insert_batch requires non-descending keys")
            # Finger walk on levels >= 1 only: level 0 holds ~all nodes,
            # so fingering it would visit the whole batch span.  Instead
            # the level-0 predecessor is reached by a short walk from the
            # nearer of the level-1 predecessor and the previous key's
            # level-0 predecessor (both provably precede ``key``).
            #
            # The walk runs bottom-up and stops at the first level whose
            # cached successor is already at or past ``key``: finger keys
            # are nondecreasing in level (each insert writes its own key
            # into every level it spans, walks only move fingers forward
            # in key order), so no higher level can need movement either
            # — its stale ``update`` entry is still the predecessor.
            top = self._level
            level = 1
            while level < top:
                next_node = nexts[level]
                if next_node is None or not next_node.key < key:
                    break
                node = next_node
                next_node = node.forward[level]
                while next_node is not None and next_node.key < key:
                    node = next_node
                    next_node = node.forward[level]
                update[level] = node
                nexts[level] = next_node
                level += 1
            node = update[0]
            other = update[1]
            if other is not head and (node is head or node.key < other.key):
                node = other
            next_node = node.forward[0]
            while next_node is not None and next_node.key < key:
                node = next_node
                next_node = node.forward[0]
            update[0] = node
            if next_node is not None and next_node.key == key:
                append_result((False, next_node.value))
                next_node.value = value
            else:
                level = 1
                while level < MAX_LEVEL and random_fn() < _P:
                    level += 1
                if level > self._level:
                    self._level = level
                node = new_node(node_cls)
                node.key = key
                node.value = value
                node.forward = forward = [None] * level
                if level == 1:
                    # 1 - _P of inserts have height 1; skip the loop.
                    predecessor = update[0]
                    forward[0] = predecessor.forward[0]
                    predecessor.forward[0] = node
                    nexts[0] = node
                else:
                    for i in range(level):
                        predecessor = update[i]
                        forward[i] = predecessor.forward[i]
                        predecessor.forward[i] = node
                        nexts[i] = node
                self._length += 1
                self._total_heights += level
                append_result((True, None))
            previous_key = key
        # Charge the finger-walk hop count in closed form: heights of
        # everything below the largest key = total heights minus the
        # tail at or past it.  ``update[0]`` still holds the largest
        # key's predecessor, so the tail walk starts at that key's node.
        tail = 0
        node = update[0].forward[0]
        while node is not None:
            tail += len(node.forward)
            node = node.forward[0]
        self.last_search_steps = self._total_heights - tail + self._level
        return results

    def get(self, key: Any, default: Any = KeyNotFoundError) -> Any:
        """Look up ``key``; raises :class:`KeyNotFoundError` by default."""
        node = self._find(key)
        if node is not None:
            return node.value
        if default is KeyNotFoundError:
            raise KeyNotFoundError(f"key not in skip list: {key!r}")
        return default

    def remove(self, key: Any) -> Any:
        """Delete ``key`` and return its value; raises if absent."""
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is None or node.key != key:
            raise KeyNotFoundError(f"key not in skip list: {key!r}")
        for i in range(len(node.forward)):
            if update[i].forward[i] is node:
                update[i].forward[i] = node.forward[i]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._length -= 1
        self._total_heights -= len(node.forward)
        return node.value

    # ------------------------------------------------------------------
    # Ordered navigation
    # ------------------------------------------------------------------
    def first(self) -> Optional[Tuple[Any, Any]]:
        """The smallest (key, value), or None when empty."""
        node = self._head.forward[0]
        return None if node is None else (node.key, node.value)

    def floor(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Greatest entry with ``entry.key <= key``, or None."""
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is not None and node.key == key:
            return (node.key, node.value)
        prev = update[0]
        if prev is self._head:
            return None
        return (prev.key, prev.value)

    def lower(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Greatest entry with ``entry.key < key``, or None."""
        prev = self._find_predecessors(key)[0]
        if prev is self._head:
            return None
        return (prev.key, prev.value)

    def ceiling(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Smallest entry with ``entry.key >= key``, or None."""
        node = self._find_predecessors(key)[0].forward[0]
        return None if node is None else (node.key, node.value)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Tuple[Any, Any]]:
        node = self._head.forward[0]
        while node is not None:
            yield (node.key, node.value)
            node = node.forward[0]

    def items_from(self, key: Any, inclusive: bool = True) -> Iterator[Tuple[Any, Any]]:
        """Ascending entries starting at ``key`` (or just after it)."""
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is not None and node.key == key and not inclusive:
            node = node.forward[0]
        while node is not None:
            yield (node.key, node.value)
            node = node.forward[0]

    def range(self, start: Any, end: Any) -> Iterator[Tuple[Any, Any]]:
        """Entries with ``start <= key < end`` in ascending order."""
        for key, value in self.items_from(start, inclusive=True):
            if not key < end:
                return
            yield (key, value)

    def items_before(self, key: Any) -> Iterator[Tuple[Any, Any]]:
        """Descending entries strictly below ``key``.

        Skip lists have no backward pointers; this walks down one
        predecessor at a time (an O(log n) search per step), which is fine
        for the short version chains GET traceback inspects.
        """
        current = key
        while True:
            entry = self.lower(current)
            if entry is None:
                return
            yield entry
            current = entry[0]
