"""A skip list (Pugh, CACM 1990) — the paper's memtable data structure.

A probabilistic sorted map with expected O(log n) search, insert, and
delete, plus ordered traversal from any key.  QinDB keys it by
``(key_bytes, version)`` so all versions of one key sit adjacent "in the
order of increasing version numbers", which is what makes GET's traceback
and GC's referent checks cheap neighbourhood walks.

The level generator is seeded, so structures (and therefore comparison
counts and simulated search costs) are reproducible.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import KeyNotFoundError

MAX_LEVEL = 32
_P = 0.25


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Any, value: Any, level: int) -> None:
        self.key = key
        self.value = value
        self.forward: List[Optional["_Node"]] = [None] * level


class SkipListMap:
    """A sorted mapping with ordered iteration and neighbour queries."""

    def __init__(self, seed: int = 0x51DB) -> None:
        self._head = _Node(None, None, MAX_LEVEL)
        self._level = 1
        self._length = 0
        self._random = random.Random(seed)
        #: comparisons performed by the most recent search, for cost models
        self.last_search_steps = 0

    def __len__(self) -> int:
        return self._length

    def __contains__(self, key: Any) -> bool:
        return self._find(key) is not None

    # ------------------------------------------------------------------
    def _random_level(self) -> int:
        level = 1
        while level < MAX_LEVEL and self._random.random() < _P:
            level += 1
        return level

    def _find_predecessors(self, key: Any) -> List[_Node]:
        """Per-level nodes after which ``key`` would be inserted."""
        update: List[_Node] = [self._head] * MAX_LEVEL
        node = self._head
        steps = 0
        for level in range(self._level - 1, -1, -1):
            while node.forward[level] is not None and node.forward[level].key < key:
                node = node.forward[level]
                steps += 1
            update[level] = node
        self.last_search_steps = steps + self._level
        return update

    def charge_steps(self, steps: int) -> None:
        """Add neighbour-walk hops to :attr:`last_search_steps`.

        Callers that descend once and then walk level-0 neighbours (the
        single-descent traceback) account the hops here so the cost model
        sees descent + walk as one search.
        """
        self.last_search_steps += steps

    def _find(self, key: Any) -> Optional[_Node]:
        node = self._find_predecessors(key)[0].forward[0]
        if node is not None and node.key == key:
            return node
        return None

    # ------------------------------------------------------------------
    def insert(self, key: Any, value: Any) -> bool:
        """Insert or replace; returns True if the key was new."""
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is not None and node.key == key:
            node.value = value
            return False
        level = self._random_level()
        if level > self._level:
            self._level = level
        node = _Node(key, value, level)
        for i in range(level):
            node.forward[i] = update[i].forward[i]
            update[i].forward[i] = node
        self._length += 1
        return True

    def insert_batch(
        self, pairs: List[Tuple[Any, Any]]
    ) -> List[Tuple[bool, Any]]:
        """Insert ascending ``(key, value)`` pairs, reusing the search
        finger between adjacent keys.

        Keys must be non-descending (equal keys replace in order, last
        writer wins).  Instead of descending from the head for every key,
        each per-level search resumes from the previous key's predecessor
        at that level — adjacent keys cost only the hops *between* them,
        so a sorted batch pays one O(log n) descent plus O(batch span)
        walk rather than len(batch) full descents.

        Returns one ``(was_new, previous_value)`` per pair
        (``previous_value`` is None for fresh keys).  The whole batch
        charges :attr:`last_search_steps` as a single search: total hops
        plus one descent's level count.
        """
        results: List[Tuple[bool, Any]] = []
        update: List[_Node] = [self._head] * MAX_LEVEL
        steps = 0
        previous_key: Any = None
        for key, value in pairs:
            if previous_key is not None and key < previous_key:
                raise ValueError("insert_batch requires non-descending keys")
            for level in range(self._level - 1, -1, -1):
                node = update[level]
                while (
                    node.forward[level] is not None
                    and node.forward[level].key < key
                ):
                    node = node.forward[level]
                    steps += 1
                update[level] = node
            candidate = update[0].forward[0]
            if candidate is not None and candidate.key == key:
                results.append((False, candidate.value))
                candidate.value = value
            else:
                level = self._random_level()
                if level > self._level:
                    self._level = level
                node = _Node(key, value, level)
                for i in range(level):
                    node.forward[i] = update[i].forward[i]
                    update[i].forward[i] = node
                self._length += 1
                results.append((True, None))
            previous_key = key
        self.last_search_steps = steps + self._level
        return results

    def get(self, key: Any, default: Any = KeyNotFoundError) -> Any:
        """Look up ``key``; raises :class:`KeyNotFoundError` by default."""
        node = self._find(key)
        if node is not None:
            return node.value
        if default is KeyNotFoundError:
            raise KeyNotFoundError(f"key not in skip list: {key!r}")
        return default

    def remove(self, key: Any) -> Any:
        """Delete ``key`` and return its value; raises if absent."""
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is None or node.key != key:
            raise KeyNotFoundError(f"key not in skip list: {key!r}")
        for i in range(len(node.forward)):
            if update[i].forward[i] is node:
                update[i].forward[i] = node.forward[i]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._length -= 1
        return node.value

    # ------------------------------------------------------------------
    # Ordered navigation
    # ------------------------------------------------------------------
    def first(self) -> Optional[Tuple[Any, Any]]:
        """The smallest (key, value), or None when empty."""
        node = self._head.forward[0]
        return None if node is None else (node.key, node.value)

    def floor(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Greatest entry with ``entry.key <= key``, or None."""
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is not None and node.key == key:
            return (node.key, node.value)
        prev = update[0]
        if prev is self._head:
            return None
        return (prev.key, prev.value)

    def lower(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Greatest entry with ``entry.key < key``, or None."""
        prev = self._find_predecessors(key)[0]
        if prev is self._head:
            return None
        return (prev.key, prev.value)

    def ceiling(self, key: Any) -> Optional[Tuple[Any, Any]]:
        """Smallest entry with ``entry.key >= key``, or None."""
        node = self._find_predecessors(key)[0].forward[0]
        return None if node is None else (node.key, node.value)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Tuple[Any, Any]]:
        node = self._head.forward[0]
        while node is not None:
            yield (node.key, node.value)
            node = node.forward[0]

    def items_from(self, key: Any, inclusive: bool = True) -> Iterator[Tuple[Any, Any]]:
        """Ascending entries starting at ``key`` (or just after it)."""
        update = self._find_predecessors(key)
        node = update[0].forward[0]
        if node is not None and node.key == key and not inclusive:
            node = node.forward[0]
        while node is not None:
            yield (node.key, node.value)
            node = node.forward[0]

    def range(self, start: Any, end: Any) -> Iterator[Tuple[Any, Any]]:
        """Entries with ``start <= key < end`` in ascending order."""
        for key, value in self.items_from(start, inclusive=True):
            if not key < end:
                return
            yield (key, value)

    def items_before(self, key: Any) -> Iterator[Tuple[Any, Any]]:
        """Descending entries strictly below ``key``.

        Skip lists have no backward pointers; this walks down one
        predecessor at a time (an O(log n) search per step), which is fine
        for the short version chains GET traceback inspects.
        """
        current = key
        while True:
            entry = self.lower(current)
            if entry is None:
                return
            yield entry
            current = entry[0]
