"""Append-only files: fixed-size segments on the native SSD interface.

An :class:`AofSegment` is one 64 MB (configurable) append-only file backed
by a block-aligned :class:`~repro.ssd.native.NativeUnit`.  The
:class:`AofManager` chains segments: appends go to the active segment and
roll over when it is full; GC erases whole segments and the manager hands
out fresh ones.

Offsets are segment-local, so a record's address is the pair
``(segment_id, offset)`` — exactly the ``offset`` field of the paper's
skip-list items.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Tuple

from repro.errors import StorageError
from repro.qindb.records import Record, decode_record, encode_record, scan_records
from repro.ssd.device import SimulatedSSD
from repro.ssd.native import NativeBlockInterface, NativeUnit

DEFAULT_SEGMENT_BYTES = 64 * 1024 * 1024


class RecordLocation(NamedTuple):
    """Durable address of one record: which segment, at which offset.

    A NamedTuple rather than a dataclass: one is built per appended
    record on the batched write path, and tuple construction is several
    times cheaper while keeping the same field names, ordering,
    hashability, and repr.
    """

    segment_id: int
    offset: int
    length: int


class AofSegment:
    """One fixed-capacity append-only file."""

    def __init__(
        self, segment_id: int, unit: NativeUnit, capacity_bytes: int
    ) -> None:
        self.segment_id = segment_id
        self.capacity_bytes = capacity_bytes
        self._unit = unit
        self.record_count = 0

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Bytes appended so far (including page padding)."""
        return self._unit.size

    @property
    def occupied_bytes(self) -> int:
        """Block-granular footprint on the device."""
        return self._unit.occupied_bytes

    @property
    def is_full(self) -> bool:
        """Whether the segment has reached its capacity."""
        return self._unit.size >= self.capacity_bytes

    # ------------------------------------------------------------------
    def append(self, record: Record) -> RecordLocation:
        """Append one record; caller must have checked :attr:`is_full`."""
        if self.is_full:
            raise StorageError(f"segment {self.segment_id} is full")
        encoded = encode_record(record)
        offset = self._unit.append(encoded)
        self.record_count += 1
        return RecordLocation(self.segment_id, offset, len(encoded))

    def append_batch(self, records: List[Record]) -> List[RecordLocation]:
        """Append as many of ``records`` as fit, back-to-back.

        Admission mirrors the one-at-a-time path exactly: a record is
        accepted while the segment is not yet full, so the split point
        across segments is the same the sequential path would choose.
        The accepted records' encodings go to the unit in one
        :meth:`~repro.ssd.native.NativeUnit.append_many` call so the
        device layer can coalesce their full pages into multi-page
        programs.  Returns the accepted records' locations (a prefix of
        ``records``; the caller rolls the remainder into a new segment).
        """
        if self.is_full:
            raise StorageError(f"segment {self.segment_id} is full")
        return self.append_encoded_batch(
            [encode_record(record) for record in records], _checked=True
        )

    def append_encoded_batch(
        self, encoded: List[bytes], _checked: bool = False
    ) -> List[RecordLocation]:
        """:meth:`append_batch` for pre-encoded frames (the hot path).

        Accepts a prefix of ``encoded`` exactly as :meth:`append_batch`
        would, returning its locations; the caller rolls the rest into
        the next segment.
        """
        if not _checked and self.is_full:
            raise StorageError(f"segment {self.segment_id} is full")
        size = self.size
        capacity = self.capacity_bytes
        lengths = list(map(len, encoded))
        total = len(encoded)
        # A record is admitted while the segment is not yet full *before*
        # it is appended, so the whole batch fits iff the size just
        # before the last record is still under capacity.
        if total and size + sum(lengths) - lengths[-1] < capacity:
            accepted = total
        else:
            accepted = total
            for index, length in enumerate(lengths):
                if size >= capacity:
                    accepted = index
                    break
                size += length
        if accepted < total:
            encoded = encoded[:accepted]
            lengths = lengths[:accepted]
        offsets = self._unit.append_many(encoded)
        self.record_count += len(encoded)
        segment_id = self.segment_id
        # tuple.__new__ directly: RecordLocation is a NamedTuple, and
        # skipping its Python-level __new__ wrapper saves a frame per
        # record on the hot path.
        new_location = tuple.__new__
        cls = RecordLocation
        return [
            new_location(cls, (segment_id, offset, length))
            for offset, length in zip(offsets, lengths)
        ]

    def read(self, location: RecordLocation) -> Record:
        """Read and decode the record at ``location``."""
        if location.segment_id != self.segment_id:
            raise StorageError(
                f"location {location} does not belong to segment "
                f"{self.segment_id}"
            )
        raw = self._unit.read(location.offset, location.length)
        record, _end = decode_record(raw)
        return record

    def read_many(self, locations: List[RecordLocation]) -> List[Record]:
        """Read and decode a batch of records in one command set.

        The unit computes the union of pages the locations touch and
        issues coalesced multi-page reads (see
        :meth:`~repro.ssd.native.NativeUnit.read_many`); a backend
        without a batched read (the filesystem ablation path) falls back
        to per-location reads.  Records return in input order.
        """
        for location in locations:
            if location.segment_id != self.segment_id:
                raise StorageError(
                    f"location {location} does not belong to segment "
                    f"{self.segment_id}"
                )
        unit_read_many = getattr(self._unit, "read_many", None)
        if unit_read_many is not None:
            raws = unit_read_many(
                [(location.offset, location.length) for location in locations]
            )
        else:
            raws = [
                self._unit.read(location.offset, location.length)
                for location in locations
            ]
        return [decode_record(raw)[0] for raw in raws]

    def scan(self) -> Iterator[Tuple[int, Record]]:
        """Yield every ``(offset, record)`` — the recovery scan.

        Charges a full sequential read of the segment's programmed pages,
        then decodes in memory (as a real recovery would).
        """
        self.flush()
        if self._unit.size:
            image = self._unit.read(0, self._unit.size)
        else:
            image = b""
        yield from scan_records(
            image,
            page_size=self._unit.page_size,
            tolerate_torn_tail=True,
        )

    def flush(self) -> None:
        """Force any buffered partial page onto flash."""
        self._unit.flush()

    def erase(self) -> None:
        """Erase the segment's blocks, returning them to the device pool."""
        self._unit.erase()


class _FileUnit:
    """An AOF backing store on the *conventional* filesystem path.

    Used by the block-alignment ablation: same append-only access pattern
    as :class:`~repro.ssd.native.NativeUnit`, but through the FTL, so
    mid-page appends cost read-modify-writes and the device GC migrates
    pages.  The interface mirrors NativeUnit.
    """

    def __init__(self, fs, tag: str) -> None:
        from repro.ssd.files import BlockFileSystem, SSDFile  # local: no cycle

        assert isinstance(fs, BlockFileSystem)
        self._fs = fs
        self.tag = tag
        self._file: SSDFile = fs.create(f"aof-{tag}")

    @property
    def size(self) -> int:
        return self._file.size

    @property
    def page_size(self) -> int:
        return self._fs.page_size

    @property
    def occupied_bytes(self) -> int:
        return self._file.page_count * self._fs.page_size

    def append(self, data: bytes) -> int:
        return self._file.append(data)

    def append_many(self, chunks) -> list:
        """No native coalescing through the FTL: one append per chunk."""
        return [self._file.append(chunk) for chunk in chunks]

    def read(self, offset: int, length: int) -> bytes:
        return self._file.read(offset, length)

    def flush(self) -> None:
        """Write-through already; nothing is buffered."""

    def erase(self) -> None:
        self._fs.delete(self._file.name)

    def discard_unprogrammed(self) -> None:
        """Write-through: a crash loses nothing beyond the memtable."""


class AofManager:
    """The chain of AOF segments behind one QinDB instance.

    ``backend`` selects the write path: ``"native"`` (default) is the
    paper's block-aligned native-interface path; ``"filesystem"`` routes
    the same append-only segments through the conventional FTL-backed
    filesystem — the ablation showing why the paper bothers with the
    native interface.
    """

    def __init__(
        self,
        device: SimulatedSSD,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        backend: str = "native",
    ) -> None:
        if segment_bytes < device.geometry.block_size:
            raise StorageError(
                f"segment size {segment_bytes} smaller than one erase "
                f"block ({device.geometry.block_size})"
            )
        if backend not in ("native", "filesystem"):
            raise StorageError(f"unknown AOF backend {backend!r}")
        self.device = device
        self.segment_bytes = segment_bytes
        self.backend = backend
        self._native = NativeBlockInterface(device)
        self._fs = None
        if backend == "filesystem":
            from repro.ssd.files import BlockFileSystem
            from repro.ssd.ftl import FlashTranslationLayer

            self._fs = BlockFileSystem(FlashTranslationLayer(device))
        self._segments: Dict[int, AofSegment] = {}
        self._next_id = 0
        self._active: AofSegment | None = None
        #: total payload bytes ever appended (the engine's disk-write side
        #: of software write amplification)
        self.bytes_appended = 0

    # ------------------------------------------------------------------
    @property
    def segments(self) -> List[AofSegment]:
        """Live segments in id order."""
        return [self._segments[i] for i in sorted(self._segments)]

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def active_segment_id(self) -> int | None:
        """Id of the segment currently receiving appends."""
        return self._active.segment_id if self._active is not None else None

    def segment(self, segment_id: int) -> AofSegment:
        try:
            return self._segments[segment_id]
        except KeyError:
            raise StorageError(f"no such AOF segment: {segment_id}") from None

    @property
    def disk_used_bytes(self) -> int:
        """Block-granular footprint of all live segments."""
        return sum(s.occupied_bytes for s in self._segments.values())

    # ------------------------------------------------------------------
    def append(self, record: Record) -> RecordLocation:
        """Append a record to the active segment, rolling over if full."""
        segment = self._active
        if segment is None or segment.is_full:
            segment = self._open_segment()
        location = segment.append(record)
        self.bytes_appended += location.length
        return location

    def append_batch(self, records: List[Record]) -> List[RecordLocation]:
        """Append ``records`` back-to-back, rolling segments as they fill.

        Records land in input order; within one segment their full pages
        coalesce into multi-page device programs.  Segment split points
        match what sequential :meth:`append` calls would produce.
        """
        return self.append_encoded_batch(
            [encode_record(record) for record in records]
        )

    def append_encoded_batch(
        self, encoded: List[bytes]
    ) -> List[RecordLocation]:
        """:meth:`append_batch` for pre-encoded frames (the hot path)."""
        locations: List[RecordLocation] = []
        index = 0
        total = len(encoded)
        while index < total:
            segment = self._active
            if segment is None or segment.is_full:
                segment = self._open_segment()
            accepted = segment.append_encoded_batch(
                encoded if index == 0 else encoded[index:]
            )
            self.bytes_appended += sum(
                location.length for location in accepted
            )
            if index == 0 and len(accepted) == total:
                # Common case: the whole batch fit in the active segment.
                return accepted
            locations.extend(accepted)
            index += len(accepted)
        return locations

    def read(self, location: RecordLocation) -> Record:
        """Read the record at ``location`` from whichever segment owns it."""
        return self.segment(location.segment_id).read(location)

    def read_many(self, locations: List[RecordLocation]) -> List[Record]:
        """Read a batch of records, grouped per owning segment.

        Locations bucket by segment (visited in id order, so the device
        charge sequence is deterministic) and each segment serves its
        share as one coalesced :meth:`AofSegment.read_many`; records
        return in input order.
        """
        by_segment: Dict[int, List[int]] = {}
        for index, location in enumerate(locations):
            by_segment.setdefault(location.segment_id, []).append(index)
        records: List[Record | None] = [None] * len(locations)
        for segment_id in sorted(by_segment):
            indices = by_segment[segment_id]
            decoded = self.segment(segment_id).read_many(
                [locations[index] for index in indices]
            )
            for index, record in zip(indices, decoded):
                records[index] = record
        return records

    def flush(self) -> None:
        """Flush the active segment's partial page."""
        if self._active is not None:
            self._active.flush()

    def drop_segment(self, segment_id: int) -> None:
        """Erase a segment and forget it (the GC's final step)."""
        segment = self._segments.pop(segment_id)
        if segment is self._active:
            self._active = None
        segment.erase()

    def scan_all(self) -> Iterator[Tuple[int, int, Record]]:
        """Yield ``(segment_id, offset, record)`` across all segments.

        Segments are visited in id order, which is append order — the
        order recovery must respect so newer records win.
        """
        for segment in self.segments:
            for offset, record in segment.scan():
                yield segment.segment_id, offset, record

    # ------------------------------------------------------------------
    def _open_segment(self) -> AofSegment:
        if self._active is not None:
            # Close out the previous active segment at a page boundary.
            self._active.flush()
        segment_id = self._next_id
        self._next_id += 1
        if self._fs is not None:
            unit = _FileUnit(self._fs, tag=str(segment_id))
        else:
            unit = self._native.open_unit(tag=f"aof-{segment_id}")
        segment = AofSegment(segment_id, unit, self.segment_bytes)
        self._segments[segment_id] = segment
        self._active = segment
        return segment
