"""Binary framing of AOF records.

Every datum QinDB persists is one framed record::

    magic(1) type(1) key_len(2) value_len(4) version(8) seq(8) crc32(4)
    key value

* ``magic`` is a non-zero constant, so page padding (zero bytes) inserted
  by the block-aligned writer is unambiguous during sequential recovery
  scans;
* ``seq`` is the engine-wide logical sequence number of the mutation.
  GC re-appends a record with its *original* sequence, so the recovery
  scan can order mutations correctly even though collection physically
  moves old records past newer ones;
* ``crc32`` covers header fields (except itself) plus key and value, so
  transmission or media corruption surfaces as
  :class:`~repro.errors.CorruptionError` instead of silent bad data;
* a ``PUT_DEDUP`` record is the paper's value-less pair: the key arrived
  with its value removed by Bifrost's deduplication;
* a ``DELETE`` record is a tombstone — the paper applies deletes in memory
  only, but persisting nothing for them would lose them across recovery,
  so recovery-relevant deletes are framed like everything else.
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.errors import CorruptionError, StorageError, TruncatedRecordError

MAGIC = 0xD1
#: magic, type, key_len, value_len, version, sequence, crc
_HEADER = struct.Struct("<BBHLQQL")
HEADER_SIZE = _HEADER.size

MAX_KEY_LEN = 0xFFFF
MAX_VALUE_LEN = 0xFFFFFFFF


class RecordType(enum.IntEnum):
    """Kinds of framed records in an AOF."""

    PUT_VALUE = 1  # complete key-value pair
    PUT_DEDUP = 2  # deduplicated pair: key + version, value removed upstream
    DELETE = 3  # tombstone for (key, version)


@dataclass(frozen=True, slots=True)
class Record:
    """One decoded AOF record."""

    type: RecordType
    key: bytes
    version: int
    value: bytes = b""
    sequence: int = 0

    def __post_init__(self) -> None:
        if len(self.key) > MAX_KEY_LEN:
            raise StorageError(f"key too long: {len(self.key)} bytes")
        if len(self.value) > MAX_VALUE_LEN:
            raise StorageError(f"value too long: {len(self.value)} bytes")
        if self.version < 0 or self.version > 0xFFFFFFFFFFFFFFFF:
            raise StorageError(f"version out of range: {self.version}")
        if self.sequence < 0 or self.sequence > 0xFFFFFFFFFFFFFFFF:
            raise StorageError(f"sequence out of range: {self.sequence}")
        if self.type is not RecordType.PUT_VALUE and self.value:
            raise StorageError(f"{self.type.name} records carry no value")

    @property
    def encoded_size(self) -> int:
        """Bytes this record occupies on disk."""
        return HEADER_SIZE + len(self.key) + len(self.value)

    @property
    def has_value(self) -> bool:
        """Whether the record stores an actual value field."""
        return self.type is RecordType.PUT_VALUE


#: the CRC's fixed-width prefix — identical bytes to the historical
#: ``bytes([type]) + version.to_bytes(8, "le") + sequence.to_bytes(8, "le")``
#: stream, packed in one struct call instead of three allocations
_CRC_PREFIX = struct.Struct("<BQQ")


def _crc(
    record_type: int, version: int, sequence: int, key: bytes, value: bytes
) -> int:
    crc = zlib.crc32(_CRC_PREFIX.pack(record_type, version, sequence))
    return zlib.crc32(value, zlib.crc32(key, crc)) & 0xFFFFFFFF


def encode_frame(
    record_type: int,
    key: bytes,
    value: bytes,
    version: int,
    sequence: int,
    # bound at def time: these run once per record on the hot path
    _pack_prefix=_CRC_PREFIX.pack,
    _pack_header=_HEADER.pack,
    _crc32=zlib.crc32,
    _join=b"".join,
) -> bytes:
    """Serialize one record frame from its raw fields.

    The batched-write hot path: byte-identical to
    ``encode_record(Record(...))`` without constructing (and validating)
    the dataclass per record.  Field-range violations the dataclass
    would have caught surface here as :class:`StorageError` via the
    struct pack limits, so callers see the same error type either way.
    """
    try:
        crc = _crc32(
            value, _crc32(key, _crc32(_pack_prefix(record_type, version, sequence)))
        ) & 0xFFFFFFFF
        return _join(
            (
                _pack_header(
                    MAGIC, record_type, len(key), len(value), version,
                    sequence, crc,
                ),
                key,
                value,
            )
        )
    except struct.error as exc:
        raise StorageError(f"record field out of range: {exc}") from None


def encode_record(record: Record) -> bytes:
    """Serialize a record to its on-disk framing."""
    return encode_frame(
        int(record.type), record.key, record.value, record.version,
        record.sequence,
    )


def decode_record(buffer: bytes, offset: int = 0) -> Tuple[Record, int]:
    """Decode one record at ``offset``; returns (record, next_offset).

    Raises :class:`CorruptionError` on bad magic, truncation, or CRC
    mismatch.
    """
    if offset + HEADER_SIZE > len(buffer):
        raise TruncatedRecordError(
            f"truncated header at offset {offset} "
            f"(need {HEADER_SIZE}, have {len(buffer) - offset})"
        )
    magic, rtype, key_len, value_len, version, sequence, crc = (
        _HEADER.unpack_from(buffer, offset)
    )
    if magic != MAGIC:
        raise CorruptionError(f"bad magic 0x{magic:02x} at offset {offset}")
    body_start = offset + HEADER_SIZE
    body_end = body_start + key_len + value_len
    if body_end > len(buffer):
        raise TruncatedRecordError(
            f"truncated body at offset {offset}: record needs "
            f"{body_end - offset} bytes, {len(buffer) - offset} available"
        )
    key = bytes(buffer[body_start : body_start + key_len])
    value = bytes(buffer[body_start + key_len : body_end])
    if _crc(rtype, version, sequence, key, value) != crc:
        raise CorruptionError(f"CRC mismatch for record at offset {offset}")
    try:
        record_type = RecordType(rtype)
    except ValueError:
        raise CorruptionError(f"unknown record type {rtype} at {offset}") from None
    return Record(record_type, key, version, value, sequence), body_end


def scan_records(
    buffer: bytes,
    page_size: Optional[int] = None,
    tolerate_torn_tail: bool = False,
) -> Iterator[Tuple[int, Record]]:
    """Yield ``(offset, record)`` for every record in a segment image.

    Zero bytes where a record header should start are page padding from
    the block-aligned writer; when ``page_size`` is given the scan skips to
    the next page boundary and continues (this is the recovery scan).

    With ``tolerate_torn_tail`` a truncated record at the very end of the
    buffer terminates the scan silently — a crash can catch the final
    record half-programmed, and recovery must treat that as end-of-log.
    Truncation anywhere else, or a CRC failure, still raises.
    """
    offset = 0
    length = len(buffer)
    while offset < length:
        if buffer[offset] == 0:
            if page_size is None:
                return
            offset = (offset // page_size + 1) * page_size
            continue
        try:
            record, next_offset = decode_record(buffer, offset)
        except TruncatedRecordError:
            if tolerate_torn_tail:
                return
            raise
        yield offset, record
        offset = next_offset
