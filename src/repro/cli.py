"""Command-line interface: quick, scaled runs of the key experiments.

Usage::

    python -m repro demo            # QinDB semantics walkthrough
    python -m repro fig5            # engine write-amplification comparison
    python -m repro fig9 --days 10  # dedup-vs-update-time mini month
    python -m repro dedup-sweep     # bandwidth saving across dup ratios

Each subcommand is a smaller sibling of the corresponding benchmark in
``benchmarks/`` — same code paths, friendlier runtimes.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.tables import render_table


def _cmd_demo(_args) -> int:
    from repro.qindb.engine import QinDB

    db = QinDB.with_capacity(64 * 1024 * 1024)
    db.put(b"url", 1, b"version-1 terms")
    db.put(b"url", 2, None)
    db.put(b"url", 3, b"version-3 terms")
    db.delete(b"url", 1)
    rows = [
        ["GET url/3", db.get(b"url", 3).decode()],
        ["GET url/2 (deduplicated)", db.get(b"url", 2).decode()],
        ["GET url/1 (deleted)", "KeyNotFoundError"],
    ]
    print(render_table(["operation", "result"], rows))
    stats = db.stats()
    print(
        f"\nsoftware WA {stats.software_write_amplification:.2f}x, "
        f"hardware WA {stats.hardware_write_amplification:.2f}x, "
        f"{stats.memtable_items} memtable items"
    )
    return 0


def _cmd_fig5(args) -> int:
    from repro.lsm.engine import LSMConfig, LSMEngine
    from repro.qindb.engine import QinDB, QinDBConfig
    from repro.ssd.timing import TimingModel
    from repro.workloads.fig5 import Fig5Workload, Fig5WorkloadConfig
    from repro.workloads.kvtrace import replay_trace

    timing = TimingModel(
        page_read_s=80e-6, page_write_s=400e-6, block_erase_s=2e-3,
        channel_parallelism=1,
    )
    workload_config = Fig5WorkloadConfig(
        key_count=args.keys, value_bytes_mean=8 * 1024, versions=8,
        retained_versions=4,
    )
    rows = []
    for name, engine in (
        (
            "QinDB",
            QinDB.with_capacity(
                64 * 1024 * 1024,
                config=QinDBConfig(segment_bytes=2 * 1024 * 1024),
                timing=timing,
            ),
        ),
        (
            "LSM",
            LSMEngine.with_capacity(
                64 * 1024 * 1024,
                config=LSMConfig(
                    memtable_bytes=512 * 1024,
                    level1_max_bytes=1024 * 1024,
                    max_file_bytes=128 * 1024,
                ),
                timing=timing,
            ),
        ),
    ):
        result = replay_trace(
            engine,
            Fig5Workload(workload_config).ops(),
            sample_interval_s=0.5,
            pace_user_bytes_per_s=3.5 * 1024 * 1024,
        )
        stats = result.final_stats
        rows.append(
            [
                name,
                f"{result.user_write_mean_mbs:.2f}",
                f"{result.sys_write_mean_mbs:.2f}",
                f"{stats.software_write_amplification:.2f}x",
                f"{stats.total_write_amplification:.2f}x",
            ]
        )
    print(
        render_table(
            ["engine", "user MB/s", "sys MB/s", "software WA", "total WA"],
            rows,
        )
    )
    return 0


def _cmd_fig9(args) -> int:
    from repro.analysis.stats import pearson_correlation
    from repro.bifrost.channels import TopologyConfig
    from repro.core.config import DirectLoadConfig
    from repro.core.directload import DirectLoad
    from repro.mint.cluster import MintConfig
    from repro.workloads.month import MonthlyTrace, MonthlyTraceConfig

    system = DirectLoad(
        DirectLoadConfig(
            doc_count=80,
            vocabulary_size=300,
            doc_length=20,
            summary_value_bytes=1024,
            forward_value_bytes=256,
            slice_bytes=32 * 1024,
            generation_window_s=5.0,
            topology=TopologyConfig(backbone_bps=100_000.0),
            mint=MintConfig(
                group_count=1, nodes_per_group=3,
                node_capacity_bytes=64 * 1024 * 1024,
            ),
        )
    )
    system.run_update_cycle()
    rows = []
    ratios, times = [], []
    for day in MonthlyTrace(MonthlyTraceConfig(days=args.days)).days():
        report = system.run_update_cycle(mutation_rate=day.mutation_rate)
        ratios.append(report.dedup_ratio)
        times.append(report.update_time_s)
        rows.append(
            [day.day, f"{report.dedup_ratio * 100:.0f}%",
             f"{report.update_time_s:.1f}s"]
        )
    print(render_table(["day", "dedup", "update time"], rows))
    print(f"\nPearson r = {pearson_correlation(ratios, times):.3f}")
    return 0


def _cmd_dedup_sweep(_args) -> int:
    from repro.bifrost.dedup import Deduplicator
    from repro.indexing.types import IndexDataset, IndexEntry, IndexKind
    from repro.workloads.kvtrace import make_value

    rows = []
    for ratio in (0.0, 0.3, 0.5, 0.7, 0.9):
        deduplicator = Deduplicator()
        for version in (1, 2):
            dataset = IndexDataset(version=version)
            unchanged = int(200 * ratio)
            for index in range(200):
                key = f"k{index:04d}".encode()
                source = 1 if (version == 1 or index < unchanged) else version
                dataset.add(
                    IndexEntry(IndexKind.FORWARD, key, make_value(key, source, 2048))
                )
            result = deduplicator.process(dataset)
        rows.append(
            [f"{ratio:.0%}", f"{result.dedup_ratio:.0%}",
             f"{result.bandwidth_saving_ratio:.0%}"]
        )
    print(render_table(["duplicates", "dedup ratio", "bandwidth saved"], rows))
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import write_report

    all_hold = write_report(args.output, days=args.days)
    print(f"wrote {args.output}")
    return 0 if all_hold else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="DirectLoad reproduction experiments"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("demo", help="QinDB semantics walkthrough")

    fig5 = commands.add_parser("fig5", help="engine write-amplification comparison")
    fig5.add_argument("--keys", type=int, default=128)

    fig9 = commands.add_parser("fig9", help="dedup vs update time mini-month")
    fig9.add_argument("--days", type=int, default=10)

    commands.add_parser("dedup-sweep", help="bandwidth saving across dup ratios")

    report = commands.add_parser(
        "report", help="write a paper-vs-measured markdown report"
    )
    report.add_argument("--output", default="REPORT.md")
    report.add_argument("--days", type=int, default=8)

    args = parser.parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "fig5": _cmd_fig5,
        "fig9": _cmd_fig9,
        "dedup-sweep": _cmd_dedup_sweep,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
