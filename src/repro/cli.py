"""Command-line interface: quick, scaled runs of the key experiments.

Usage::

    python -m repro demo            # QinDB semantics walkthrough
    python -m repro fig5            # engine write-amplification comparison
    python -m repro fig9 --days 10  # dedup-vs-update-time mini month
    python -m repro month --pipelined  # overlapped daily update cycles
    python -m repro dedup-sweep     # bandwidth saving across dup ratios
    python -m repro observe         # traced cycle: stages + metrics
    python -m repro perf --json     # kernel bench: events/sec per scenario
    python -m repro bandwidth --json  # wire bytes: dedup x encoding arms
    python -m repro serve --json    # read-serving: batching, shedding, SLO
    python -m repro chaos --plan single-node-crash  # faults + recovery
    python -m repro health --json   # telemetry: alerts, MTTD/MTTR, profile

Each subcommand is a smaller sibling of the corresponding benchmark in
``benchmarks/`` — same code paths, friendlier runtimes.  Every command
that renders a table also takes ``--json`` to emit the same data as
machine-readable JSON on stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.tables import render_table


def _emit(args, data: dict, render) -> None:
    """Print ``data`` as JSON if ``--json``, else via ``render(data)``."""
    if getattr(args, "json", False):
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        render(data)


def _cmd_demo(args) -> int:
    from repro.qindb.engine import QinDB

    db = QinDB.with_capacity(64 * 1024 * 1024)
    db.put(b"url", 1, b"version-1 terms")
    db.put(b"url", 2, None)
    db.put(b"url", 3, b"version-3 terms")
    db.delete(b"url", 1)
    stats = db.stats()
    data = {
        "operations": [
            {"operation": "GET url/3", "result": db.get(b"url", 3).decode()},
            {
                "operation": "GET url/2 (deduplicated)",
                "result": db.get(b"url", 2).decode(),
            },
            {"operation": "GET url/1 (deleted)", "result": "KeyNotFoundError"},
        ],
        "stats": {
            "software_write_amplification": stats.software_write_amplification,
            "hardware_write_amplification": stats.hardware_write_amplification,
            "memtable_items": stats.memtable_items,
        },
    }

    def render(data: dict) -> None:
        rows = [[op["operation"], op["result"]] for op in data["operations"]]
        print(render_table(["operation", "result"], rows))
        stats = data["stats"]
        print(
            f"\nsoftware WA {stats['software_write_amplification']:.2f}x, "
            f"hardware WA {stats['hardware_write_amplification']:.2f}x, "
            f"{stats['memtable_items']} memtable items"
        )

    _emit(args, data, render)
    return 0


def _cmd_fig5(args) -> int:
    from repro.lsm.engine import LSMConfig, LSMEngine
    from repro.qindb.engine import QinDB, QinDBConfig
    from repro.ssd.timing import TimingModel
    from repro.workloads.fig5 import Fig5Workload, Fig5WorkloadConfig
    from repro.workloads.kvtrace import replay_trace

    timing = TimingModel(
        page_read_s=80e-6, page_write_s=400e-6, block_erase_s=2e-3,
        channel_parallelism=1,
    )
    workload_config = Fig5WorkloadConfig(
        key_count=args.keys, value_bytes_mean=8 * 1024, versions=8,
        retained_versions=4,
    )
    engines = []
    for name, engine in (
        (
            "QinDB",
            QinDB.with_capacity(
                64 * 1024 * 1024,
                config=QinDBConfig(segment_bytes=2 * 1024 * 1024),
                timing=timing,
            ),
        ),
        (
            "LSM",
            LSMEngine.with_capacity(
                64 * 1024 * 1024,
                config=LSMConfig(
                    memtable_bytes=512 * 1024,
                    level1_max_bytes=1024 * 1024,
                    max_file_bytes=128 * 1024,
                ),
                timing=timing,
            ),
        ),
    ):
        result = replay_trace(
            engine,
            Fig5Workload(workload_config).ops(),
            sample_interval_s=0.5,
            pace_user_bytes_per_s=3.5 * 1024 * 1024,
        )
        stats = result.final_stats
        engines.append(
            {
                "engine": name,
                "user_write_mean_mbs": result.user_write_mean_mbs,
                "sys_write_mean_mbs": result.sys_write_mean_mbs,
                "software_write_amplification": (
                    stats.software_write_amplification
                ),
                "total_write_amplification": stats.total_write_amplification,
            }
        )
    data = {"engines": engines}

    def render(data: dict) -> None:
        rows = [
            [
                row["engine"],
                f"{row['user_write_mean_mbs']:.2f}",
                f"{row['sys_write_mean_mbs']:.2f}",
                f"{row['software_write_amplification']:.2f}x",
                f"{row['total_write_amplification']:.2f}x",
            ]
            for row in data["engines"]
        ]
        print(
            render_table(
                ["engine", "user MB/s", "sys MB/s", "software WA", "total WA"],
                rows,
            )
        )

    _emit(args, data, render)
    return 0


def _cmd_fig9(args) -> int:
    from repro.analysis.stats import pearson_correlation
    from repro.bifrost.channels import TopologyConfig
    from repro.core.config import DirectLoadConfig
    from repro.core.directload import DirectLoad
    from repro.mint.cluster import MintConfig
    from repro.workloads.month import MonthlyTrace, MonthlyTraceConfig

    system = DirectLoad(
        DirectLoadConfig(
            doc_count=80,
            vocabulary_size=300,
            doc_length=20,
            summary_value_bytes=1024,
            forward_value_bytes=256,
            slice_bytes=32 * 1024,
            generation_window_s=5.0,
            topology=TopologyConfig(backbone_bps=100_000.0),
            mint=MintConfig(
                group_count=1, nodes_per_group=3,
                node_capacity_bytes=64 * 1024 * 1024,
            ),
        )
    )
    system.run_update_cycle()
    days = []
    ratios, times = [], []
    for day in MonthlyTrace(MonthlyTraceConfig(days=args.days)).days():
        report = system.run_update_cycle(mutation_rate=day.mutation_rate)
        ratios.append(report.dedup_ratio)
        times.append(report.update_time_s)
        days.append(
            {
                "day": day.day,
                "dedup_ratio": report.dedup_ratio,
                "update_time_s": report.update_time_s,
            }
        )
    data = {
        "days": days,
        "pearson_r": pearson_correlation(ratios, times),
    }

    def render(data: dict) -> None:
        rows = [
            [
                row["day"],
                f"{row['dedup_ratio'] * 100:.0f}%",
                f"{row['update_time_s']:.1f}s",
            ]
            for row in data["days"]
        ]
        print(render_table(["day", "dedup", "update time"], rows))
        print(f"\nPearson r = {data['pearson_r']:.3f}")

    _emit(args, data, render)
    return 0


def _make_month_system():
    """A small generation-window-bound DirectLoad for ``repro month``.

    The backbone is fast enough that a version's delivery tail is a
    fraction of the 5 s generation window — the regime where pipelining
    generation against delivery actually shortens the month.
    """
    from repro.bifrost.channels import TopologyConfig
    from repro.core.config import DirectLoadConfig
    from repro.core.directload import DirectLoad
    from repro.mint.cluster import MintConfig

    return DirectLoad(
        DirectLoadConfig(
            doc_count=80,
            vocabulary_size=300,
            doc_length=20,
            summary_value_bytes=1024,
            forward_value_bytes=256,
            slice_bytes=32 * 1024,
            generation_window_s=5.0,
            topology=TopologyConfig(backbone_bps=1_000_000.0),
            mint=MintConfig(
                group_count=1, nodes_per_group=3,
                node_capacity_bytes=64 * 1024 * 1024,
            ),
        )
    )


def _cmd_month(args) -> int:
    from repro.workloads.month import MonthlyTrace, MonthlyTraceConfig

    schedule = MonthlyTrace(MonthlyTraceConfig(days=args.days)).days()
    # Version 1 is the bootstrap load; one more version per scheduled day.
    specs = [None] + [day.mutation_rate for day in schedule]
    system = _make_month_system()
    if args.pipelined:
        reports = system.run_pipelined_cycles(specs)
        makespan_s = system.last_pipelined_makespan_s
    else:
        started = system.sim.now
        reports = [system.run_update_cycle()]
        for day in schedule:
            reports.append(
                system.run_update_cycle(mutation_rate=day.mutation_rate)
            )
        makespan_s = system.sim.now - started
    cycles = [
        {
            "version": report.version,
            "dedup_ratio": report.dedup_ratio,
            "update_time_s": report.update_time_s,
            "keys_delivered": report.keys_delivered,
            "promoted": report.promoted,
            "stages": report.stages,
        }
        for report in reports
    ]
    data = {
        "mode": "pipelined" if args.pipelined else "serial",
        "days": args.days,
        "cycles": cycles,
        "makespan_s": makespan_s,
        "sum_update_time_s": sum(r.update_time_s for r in reports),
        "keys_delivered": sum(r.keys_delivered for r in reports),
    }

    def render(data: dict) -> None:
        rows = [
            [
                row["version"],
                f"{row['dedup_ratio'] * 100:.0f}%",
                f"{row['update_time_s']:.1f}s",
                f"{row['keys_delivered']:,}",
                "yes" if row["promoted"] else "NO",
            ]
            for row in data["cycles"]
        ]
        print(
            render_table(
                ["version", "dedup", "update time", "keys", "promoted"], rows
            )
        )
        print(
            f"\n{data['mode']} month: makespan {data['makespan_s']:.1f}s, "
            f"sum of update times {data['sum_update_time_s']:.1f}s"
        )

    _emit(args, data, render)
    return 0


def _cmd_dedup_sweep(args) -> int:
    from repro.bifrost.dedup import Deduplicator
    from repro.indexing.types import IndexDataset, IndexEntry, IndexKind
    from repro.workloads.kvtrace import make_value

    points = []
    for ratio in (0.0, 0.3, 0.5, 0.7, 0.9):
        deduplicator = Deduplicator()
        for version in (1, 2):
            dataset = IndexDataset(version=version)
            unchanged = int(200 * ratio)
            for index in range(200):
                key = f"k{index:04d}".encode()
                source = 1 if (version == 1 or index < unchanged) else version
                dataset.add(
                    IndexEntry(IndexKind.FORWARD, key, make_value(key, source, 2048))
                )
            result = deduplicator.process(dataset)
        points.append(
            {
                "duplicates": ratio,
                "dedup_ratio": result.dedup_ratio,
                "bandwidth_saving_ratio": result.bandwidth_saving_ratio,
            }
        )
    data = {"points": points}

    def render(data: dict) -> None:
        rows = [
            [
                f"{row['duplicates']:.0%}",
                f"{row['dedup_ratio']:.0%}",
                f"{row['bandwidth_saving_ratio']:.0%}",
            ]
            for row in data["points"]
        ]
        print(render_table(["duplicates", "dedup ratio", "bandwidth saved"], rows))

    _emit(args, data, render)
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import (
        collect_sections,
        generate_report,
        sections_to_dict,
    )

    sections = collect_sections(days=args.days)
    data = sections_to_dict(sections)
    content = generate_report(days=args.days, sections=sections)
    with open(args.output, "w") as handle:
        handle.write(content)
    if args.json:
        data["output"] = args.output
        print(json.dumps(data, indent=2, sort_keys=True))
    else:
        print(f"wrote {args.output}")
    return 0 if data["all_hold"] else 1


def _cmd_observe(args) -> int:
    from repro.obs.runner import observe_cycle

    observation = observe_cycle(cycles=args.cycles)
    if args.trace_out:
        with open(args.trace_out, "w") as handle:
            json.dump(observation.chrome_trace(), handle)
    data = observation.to_dict()
    if args.trace_out:
        data["trace_out"] = args.trace_out

    def render(data: dict) -> None:
        cycle_rows = [
            [
                row["version"],
                f"{row['dedup_ratio'] * 100:.0f}%",
                f"{row['bytes_sent']:,}",
                f"{row['update_time_s']:.1f}s",
                "yes" if row["promoted"] else "NO",
            ]
            for row in data["cycles"]
        ]
        print(
            render_table(
                ["version", "dedup", "bytes sent", "update time", "promoted"],
                cycle_rows,
            )
        )
        stage_rows = [
            [
                row["stage"],
                row["count"],
                f"{row['total_s']:.3f}s",
                f"{row['share'] * 100:.1f}%",
            ]
            for row in data["stages"]
        ]
        print()
        print(render_table(["stage", "spans", "sim time", "share"], stage_rows))
        print()
        highlight_rows = [
            [name, f"{value:,.0f}"]
            for name, value in sorted(data["highlights"].items())
        ]
        print(render_table(["metric", "value"], highlight_rows))
        print(f"\n{data['span_count']} spans recorded")
        if "trace_out" in data:
            print(f"wrote Chrome trace to {data['trace_out']}")

    _emit(args, data, render)
    return 0


def _cmd_perf(args) -> int:
    from repro.workloads.perf import compare_entries, run_perf

    entry = run_perf(
        scenarios=args.scenario or None,
        days=args.days,
        repeat=args.repeat,
        fleet=args.fleet,
        tracing=args.tracing,
        label=args.label,
        fleet_groups=args.fleet_groups,
        fleet_nodes_per_group=args.fleet_nodes,
    )
    failures: List[str] = []
    if args.check:
        with open(args.check) as handle:
            bench = json.load(handle)
        entries = bench.get("entries") or []
        if args.baseline_label:
            entries = [
                e for e in entries if e.get("label") == args.baseline_label
            ]
        if not entries:
            wanted = (
                f" labelled {args.baseline_label!r}"
                if args.baseline_label
                else ""
            )
            failures.append(f"{args.check} has no baseline entries{wanted}")
        else:
            failures = compare_entries(
                entry, entries[-1], min_ratio=args.min_ratio
            )
    if args.out:
        try:
            with open(args.out) as handle:
                bench = json.load(handle)
        except FileNotFoundError:
            bench = {
                "benchmark": "kernel",
                "units": {
                    "events_per_s": "kernel events per wall second",
                    "sim_s_per_wall_s": "simulated seconds per wall second",
                },
                "entries": [],
            }
        bench["entries"].append(entry)
        with open(args.out, "w") as handle:
            json.dump(bench, handle, indent=2, sort_keys=True)
            handle.write("\n")
    data = dict(entry)
    if args.check:
        data["baseline"] = args.check
        data["regressions"] = failures
    if args.out:
        data["out"] = args.out

    def render(data: dict) -> None:
        rows = [
            [
                name,
                f"{result['events']:,}",
                f"{result['wall_s']:.3f}s",
                f"{result['events_per_s']:,.0f}",
                f"{result['sim_s_per_wall_s']:,.1f}",
                f"{result['keys_delivered']:,}",
            ]
            for name, result in data["scenarios"].items()
        ]
        print(
            render_table(
                ["scenario", "events", "wall", "events/s", "sim-s/wall-s",
                 "keys"],
                rows,
            )
        )
        if "fleet" in data:
            fleet = data["fleet"]
            print(
                f"\nfleet smoke: {fleet['nodes']} nodes, "
                f"{fleet['keys_per_cycle']:,} keys/cycle, "
                f"{fleet['wall_s']:.2f}s wall "
                f"({fleet['events_per_s']:,.0f} events/s)"
            )
        if "regressions" in data:
            if data["regressions"]:
                print(f"\nREGRESSION vs {data['baseline']}:")
                for line in data["regressions"]:
                    print(f"  {line}")
            else:
                print(f"\nno regression vs {data['baseline']}")
        if "out" in data:
            print(f"\nappended entry {data['label']!r} to {data['out']}")

    _emit(args, data, render)
    return 1 if failures else 0


def _cmd_bandwidth(args) -> int:
    from repro.workloads.bandwidth import (
        compare_bandwidth_entries,
        run_bandwidth,
    )

    entry = run_bandwidth(days=args.days, label=args.label)
    failures: List[str] = []
    if args.check:
        with open(args.check) as handle:
            bench = json.load(handle)
        entries = bench.get("entries") or []
        if args.baseline_label:
            entries = [
                e for e in entries if e.get("label") == args.baseline_label
            ]
        if not entries:
            wanted = (
                f" labelled {args.baseline_label!r}"
                if args.baseline_label
                else ""
            )
            failures.append(f"{args.check} has no baseline entries{wanted}")
        else:
            failures = compare_bandwidth_entries(
                entry, entries[-1], min_ratio=args.min_ratio
            )
    if args.out:
        try:
            with open(args.out) as handle:
                bench = json.load(handle)
        except FileNotFoundError:
            bench = {
                "benchmark": "bandwidth",
                "units": {
                    "wire_reduction_ratio": (
                        "fraction of wire bytes removed beyond dedup alone"
                    ),
                    "hash_ratio": (
                        "naive over tiered full hashes during audits"
                    ),
                },
                "entries": [],
            }
        bench["entries"].append(entry)
        with open(args.out, "w") as handle:
            json.dump(bench, handle, indent=2, sort_keys=True)
            handle.write("\n")
    data = dict(entry)
    if args.check:
        data["baseline"] = args.check
        data["regressions"] = failures
    if args.out:
        data["out"] = args.out

    def render(data: dict) -> None:
        rows = [
            [
                name,
                f"{arm['wire_bytes_sent']:,}",
                f"{arm['payload_bytes_sent']:,}",
                f"{arm.get('compression_ratio', 1.0):.3f}",
                f"{arm['keys_delivered']:,}",
            ]
            for name, arm in data["arms"].items()
        ]
        print(
            render_table(
                ["arm", "wire bytes", "payload bytes", "wire/payload",
                 "keys"],
                rows,
            )
        )
        print(
            f"\nwire reduction beyond dedup: "
            f"{data['wire_reduction_ratio'] * 100:.1f}% "
            f"(vs raw: {data['wire_reduction_vs_raw'] * 100:.1f}%); "
            "delivered contents "
            + (
                "byte-identical"
                if data["delivered_digest_match"]
                else "DIFFER"
            )
        )
        audit = data["audit"]
        print(
            f"audit: tiered {audit['tiered_full_hashes']:,} full hashes "
            f"vs naive {audit['naive_full_hashes']:,} "
            f"({audit['hash_ratio']:.1f}x fewer), "
            f"{audit['tiered_hashes_per_slice']:.1f} hashes/slice "
            f"(log2 bound {audit['log2_bound_per_slice']})"
        )
        if "regressions" in data:
            if data["regressions"]:
                print(f"\nREGRESSION vs {data['baseline']}:")
                for line in data["regressions"]:
                    print(f"  {line}")
            else:
                print(f"\nno regression vs {data['baseline']}")
        if "out" in data:
            print(f"\nappended entry {data['label']!r} to {data['out']}")

    _emit(args, data, render)
    return 1 if failures else 0


def _cmd_serve(args) -> int:
    from repro.serving import ServingConfig
    from repro.workloads.serving import (
        FlashCrowdConfig,
        ServingWorkloadConfig,
        compare_serving_entries,
        run_serving_bench,
    )

    flash = None
    if args.flash_multiplier > 1:
        flash = FlashCrowdConfig(multiplier=args.flash_multiplier)
    workload = ServingWorkloadConfig(
        days=args.days,
        qps_per_node=args.qps_per_node,
        duration_s=args.duration,
        flash=flash,
        updates=args.updates,
        plan=args.plan,
        serving=ServingConfig(
            coalesce_window_s=args.window,
            max_batch=args.max_batch,
            max_queue_depth_per_replica=args.depth,
            slo_p99_s=args.slo,
        ),
        seed=args.seed,
    )
    entry = run_serving_bench(label=args.label or "run", workload=workload)

    failures: List[str] = []
    if args.check:
        with open(args.check) as handle:
            bench = json.load(handle)
        entries = bench.get("entries") or []
        if args.baseline_label:
            entries = [
                e for e in entries if e.get("label") == args.baseline_label
            ]
        baseline = entries[-1] if entries else None
        failures = compare_serving_entries(
            entry, baseline, min_ratio=args.min_ratio
        )
        if baseline is None:
            failures.append(f"{args.check} has no baseline entries")
    if args.out:
        try:
            with open(args.out) as handle:
                bench = json.load(handle)
        except FileNotFoundError:
            bench = {
                "benchmark": "serving",
                "units": {
                    "keys_per_device_s": (
                        "reads served per simulated device-second"
                    ),
                    "speedup": "batched over per-key read throughput",
                    "latency": "simulated seconds, admitted requests only",
                },
                "entries": [],
            }
        bench["entries"].append(entry)
        with open(args.out, "w") as handle:
            json.dump(bench, handle, indent=2, sort_keys=True)
            handle.write("\n")
    data = dict(entry)
    if args.check:
        data["baseline"] = args.check
        data["regressions"] = failures
    if args.out:
        data["out"] = args.out

    def render(data: dict) -> None:
        ablation = data["ablation"]
        fleet = data["workload"]["serving"]["fleet"]
        rows = [
            [
                arm,
                f"{ablation[arm]['keys']:,}",
                f"{ablation[arm]['device_s'] * 1000:.2f}ms",
                f"{ablation[arm]['keys_per_device_s']:,.0f}",
            ]
            for arm in ("per_key", "batched")
        ]
        print(render_table(["read path", "keys", "device time", "keys/s"], rows))
        print(
            f"\nbatched speedup {ablation['speedup']:.2f}x, values "
            + ("byte-identical" if ablation["digests_match"] else "DIFFER")
        )
        latency = fleet.get("p99_s", 0.0)
        print(
            f"serving: {fleet['requests']:,} offered, "
            f"{fleet['admitted']:,} admitted, {fleet['shed']:,} shed "
            f"({fleet['shed_rate'] * 100:.1f}%), "
            f"{fleet['not_found']} not found"
        )
        print(
            f"latency: p99 {latency * 1000:.2f}ms vs SLO "
            f"{fleet['slo_p99_s'] * 1000:.0f}ms "
            f"({'met' if fleet['slo_met'] else 'MISSED'}); "
            f"{data['workload']['achieved_qps']:,.0f} qps achieved"
        )
        if "regressions" in data:
            if data["regressions"]:
                print(f"\nREGRESSION vs {data['baseline']}:")
                for line in data["regressions"]:
                    print(f"  {line}")
            else:
                print(f"\nno regression vs {data['baseline']}")
        if "out" in data:
            print(f"\nappended entry {data['label']!r} to {data['out']}")

    _emit(args, data, render)
    return 1 if failures else 0


def _cmd_chaos(args) -> int:
    from repro.workloads.chaos import ChaosConfig, run_chaos

    result = run_chaos(
        ChaosConfig(
            plan=args.plan, cycles=args.cycles, telemetry=args.telemetry,
            integrity=args.integrity, wire_encoding=args.wire,
        )
    )
    data = result.data

    def render(data: dict) -> None:
        rows = [
            [
                row["version"],
                f"{row['keys_delivered']:,}",
                f"{row['update_time_s']:.1f}s",
                f"{row['miss_ratio'] * 100:.2f}%",
                row["retransmissions"],
                "yes" if row["promoted"] else "NO",
            ]
            for row in data["cycles"]
        ]
        print(
            render_table(
                ["version", "keys", "update time", "miss", "retx", "promoted"],
                rows,
            )
        )
        availability = data["availability"]
        faults = data["faults"]
        transport = data["transport"]
        print(
            f"\nplan {data['plan']!r}: {data['fault_events']} fault event(s), "
            f"{faults['node_crashes']} crash(es), "
            f"{faults['link_partitions']} partition(s)"
        )
        print(
            f"availability: {availability['unavailable']}/"
            f"{availability['probes']} probe reads unavailable "
            f"({availability['unavailable_ratio'] * 100:.1f}%)"
        )
        print(
            f"repair: {faults['repair_keys']} keys / "
            f"{faults['repair_bytes']:,} bytes across "
            f"{faults['repair_runs']} run(s); time to re-protect "
            f"{faults['reprotect_last_s']:.2f}s "
            f"(worst {faults['reprotect_max_s']:.2f}s)"
        )
        print(
            f"transport: {transport['retransmits']} retransmit(s), "
            f"{transport['relay_failovers']} relay failover(s), "
            f"{transport['abandoned']} abandoned"
        )
        print(
            f"verification: {data['lost_acknowledged_keys']}/"
            f"{data['verified_keys']} acknowledged keys lost, "
            f"{data['under_replicated_final']} under-replicated"
        )
        if "integrity" in data:
            integrity = data["integrity"]
            print(
                f"integrity: {integrity['slices_audited']} slice audit(s), "
                f"{integrity['records_sampled']} record(s) sampled, "
                f"{integrity['full_hashes']} full hash(es); "
                f"{integrity['divergent_records']} divergent, "
                f"{integrity['records_repaired']} repaired "
                f"({'clean' if integrity['clean'] else 'DAMAGED'})"
            )
        if "bandwidth" in data:
            bandwidth = data["bandwidth"]
            print(
                f"bandwidth: {bandwidth['wire_bytes_sent']:,} wire bytes "
                f"for {bandwidth['payload_bytes_sent']:,} payload bytes "
                f"(slice streams {bandwidth['compression_ratio']:.3f} of "
                f"logical; {bandwidth['slices_parked']} parked)"
            )
        if "detection" in data:
            detection = data["detection"]
            print(
                f"detection: {detection['detected']}/"
                f"{detection['injected']} fault(s) detected "
                f"({detection['undetected_required']} required miss(es)); "
                f"MTTD mean {detection['mttd']['mean_s']:.2f}s, "
                f"MTTR mean {detection['mttr']['mean_s']:.2f}s"
            )

    _emit(args, data, render)
    undetected = data.get("detection", {}).get("undetected_required", 0)
    ok = data["lost_acknowledged_keys"] == 0 and undetected == 0
    return 0 if ok else 1


def _cmd_health(args) -> int:
    from repro.workloads.health import HealthConfig, run_health

    result = run_health(
        HealthConfig(
            plan=args.plan,
            cycles=args.cycles,
            sample_interval_s=args.interval,
            fast_window_s=args.fast_window,
            slow_window_s=args.slow_window,
            watch_interval_s=args.watch_interval,
            top_k=args.top_k,
            include_flamegraph=args.flamegraph,
        )
    )
    data = result.data
    if args.trace_out:
        with open(args.trace_out, "w") as handle:
            json.dump(result.chaos.system.tracer.to_chrome_trace(), handle)
        data["trace_out"] = args.trace_out
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def render(data: dict) -> None:
        detection = data["detection"]
        fault_rows = [
            [
                row["kind"],
                row["target"],
                f"{row['injected_at_s']:.2f}s",
                row["detected_by"] or "UNDETECTED",
                "-" if row["mttd_s"] is None else f"{row['mttd_s']:.2f}s",
                "-" if row["mttr_s"] is None else f"{row['mttr_s']:.2f}s",
            ]
            for row in detection["faults"]
        ]
        print(
            render_table(
                ["fault", "target", "injected", "detected by", "MTTD",
                 "MTTR"],
                fault_rows,
            )
        )
        print(
            f"\nplan {data['plan']!r}: {detection['detected']}/"
            f"{detection['injected']} fault(s) detected, "
            f"{detection['undetected_required']} required miss(es); "
            f"{len(data['alerts'])} alert(s) fired"
        )
        telemetry = data["telemetry"]
        print(
            f"telemetry: {telemetry['samples']} samples at "
            f"{telemetry['sample_interval_s']}s, windows "
            f"{telemetry['fast_window_s']}s/{telemetry['slow_window_s']}s; "
            f"fleet score {data['health']['fleet_score']:.2f}"
        )
        watch_rows = [
            [
                f"{row['at_s']:.1f}s",
                f"{row['fleet_score']:.2f}",
                row["nodes_down"],
                row["active_alerts"],
                ",".join(row["alert_names"]) or "-",
            ]
            for row in data["watch"]
        ]
        print()
        print(
            render_table(
                ["at", "fleet", "nodes down", "alerts", "firing"],
                watch_rows,
            )
        )
        profile = data["profile"]
        stage_rows = [
            [
                row["operation"],
                row["count"],
                f"{row['total_s']:.3f}s",
                f"{row['self_s']:.3f}s",
                f"{row['device_s']:.3f}s",
                f"{row['bytes']:,.0f}",
            ]
            for row in profile["stages"][: args.top_k]
        ]
        print()
        print(
            render_table(
                ["operation", "spans", "total", "self", "device", "bytes"],
                stage_rows,
            )
        )
        print(
            f"\nprofile: {profile['span_count']} spans, device busy "
            f"{profile['device_busy_s']:.3f}s, "
            f"{profile['bytes_moved']:,.0f} bytes moved"
        )
        if "trace_out" in data:
            print(f"wrote Chrome trace to {data['trace_out']}")

    _emit(args, data, render)
    ok = (
        data["lost_acknowledged_keys"] == 0
        and data["detection"]["undetected_required"] == 0
    )
    return 0 if ok else 1


#: crash plan for ``repro rebalance --crash``: kill a node of the group
#: created by the scripted split while it is still receiving copies —
#: the hardest elastic fault (copy target dies mid-rebalance).
REBALANCE_CRASH_PLAN = "crash node=north-dc1/g1/n0 at=0.05 down=2"


def _cmd_rebalance(args) -> int:
    from repro.workloads.rebalance import (
        RebalanceConfig,
        bench_entry,
        compare_rebalance_entries,
        run_rebalance,
    )

    plan = REBALANCE_CRASH_PLAN if args.crash else args.plan
    config = RebalanceConfig(
        days=args.days,
        plan=plan,
        split_day=args.split_day,
        bandwidth_bps=args.bandwidth,
        max_records_per_s=args.records_per_s,
    )
    result = run_rebalance(config)
    data = dict(result.data)
    entry = bench_entry(data, label=args.label)
    failures: List[str] = []
    if args.check:
        with open(args.check) as handle:
            bench = json.load(handle)
        entries = bench.get("entries") or []
        if args.baseline_label:
            entries = [
                e for e in entries if e.get("label") == args.baseline_label
            ]
        if not entries:
            wanted = (
                f" labelled {args.baseline_label!r}"
                if args.baseline_label
                else ""
            )
            failures.append(f"{args.check} has no baseline entries{wanted}")
        else:
            failures = compare_rebalance_entries(
                entry, entries[-1], min_ratio=args.min_ratio
            )
    if args.out:
        try:
            with open(args.out) as handle:
                bench = json.load(handle)
        except FileNotFoundError:
            bench = {
                "benchmark": "rebalance",
                "units": {
                    "bytes_moved": (
                        "payload bytes copied by the migrator, including "
                        "dedup chain bases"
                    ),
                    "move_duration_s": (
                        "summed simulated seconds of topology operations"
                    ),
                    "read_p99_during_move_s": (
                        "p99 read service time (simulated seconds) for "
                        "probes issued while a migration was in flight"
                    ),
                },
                "entries": [],
            }
        bench["entries"].append(entry)
        with open(args.out, "w") as handle:
            json.dump(bench, handle, indent=2, sort_keys=True)
            handle.write("\n")
    data["entry"] = entry
    if args.check:
        data["baseline"] = args.check
        data["regressions"] = failures
    if args.out:
        data["out"] = args.out

    def render(data: dict) -> None:
        entry = data["entry"]
        op_rows = [
            [
                f"{op['started_at_s']:.2f}s",
                op["dc"],
                op["kind"],
                op["target"],
                f"{op['duration_s']:.3f}s",
            ]
            for op in data["operations"]
        ]
        print(render_table(["start", "dc", "op", "target", "took"], op_rows))
        fleet = data["fleet"]
        print(
            f"\nfleet: {fleet['start']['nodes']} nodes / "
            f"{fleet['start']['groups']} groups -> "
            f"{fleet['final']['nodes']} nodes / "
            f"{fleet['final']['groups']} groups over {data['days']} days "
            f"({len(data['operations'])} ops, "
            f"{len(data['decisions'])} autoscaler decisions)"
        )
        migration = data["migration"]
        print(
            f"moved {migration['keys_moved']:,} keys "
            f"({migration['records_copied']:,} records + "
            f"{migration['bases_copied']:,} chain bases, "
            f"{migration['bytes_moved']:,} bytes) in "
            f"{migration['total_move_s']:.2f}s simulated; "
            f"{migration['withdrawals']:,} stale copies withdrawn"
        )
        overall = data["read_latency"]["overall"]
        moving = data["read_latency"]["during_migration"]
        print(
            f"reads: p99 {overall['p99'] * 1e3:.3f}ms overall, "
            f"{moving['p99'] * 1e3:.3f}ms during migration "
            f"({moving['count']} of {overall['count']} probes mid-move, "
            f"{data['availability']['unavailable']} unavailable)"
        )
        if "faults" in data:
            faults = data["faults"]
            print(
                f"faults: {faults['node_crashes']} crash(es), "
                f"{faults['node_restarts']} restart(s), "
                f"{faults['repair_keys']} keys re-replicated"
            )
        contracts = [
            ("zero acknowledged-key loss", entry["zero_loss"]),
            ("fully replicated at rest", entry["under_replicated_final"] == 0),
            ("byte-identical vs static baseline", entry["digests_match"]),
        ]
        for name, ok in contracts:
            print(f"  [{'ok' if ok else 'FAIL'}] {name}")
        if "regressions" in data:
            if data["regressions"]:
                print(f"\nREGRESSION vs {data['baseline']}:")
                for line in data["regressions"]:
                    print(f"  {line}")
            else:
                print(f"\nno regression vs {data['baseline']}")
        if "out" in data:
            print(f"\nappended entry {entry['label']!r} to {data['out']}")

    _emit(args, data, render)
    contracts_ok = (
        entry["zero_loss"]
        and entry["under_replicated_final"] == 0
        and entry["digests_match"]
    )
    return 0 if contracts_ok and not failures else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="DirectLoad reproduction experiments"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="QinDB semantics walkthrough")

    fig5 = commands.add_parser("fig5", help="engine write-amplification comparison")
    fig5.add_argument("--keys", type=int, default=128)

    fig9 = commands.add_parser("fig9", help="dedup vs update time mini-month")
    fig9.add_argument("--days", type=int, default=10)

    month = commands.add_parser(
        "month", help="daily update cycles, serially or pipelined"
    )
    month.add_argument("--days", type=int, default=6)
    month.add_argument(
        "--pipelined", action="store_true",
        help="overlap version N+1's generation with version N's delivery",
    )

    dedup_sweep = commands.add_parser(
        "dedup-sweep", help="bandwidth saving across dup ratios"
    )

    report = commands.add_parser(
        "report", help="write a paper-vs-measured markdown report"
    )
    report.add_argument("--output", default="REPORT.md")
    report.add_argument("--days", type=int, default=8)

    observe = commands.add_parser(
        "observe", help="traced update cycles: stage breakdown + metrics"
    )
    observe.add_argument("--cycles", type=int, default=2)
    observe.add_argument(
        "--trace-out", default=None,
        help="write the Chrome trace_event JSON here",
    )

    perf = commands.add_parser(
        "perf", help="kernel perf bench: events/sec on the canned scenarios"
    )
    perf.add_argument(
        "--scenario", action="append", default=None,
        help="run only this scenario (repeatable); default: all three",
    )
    perf.add_argument("--days", type=int, default=6)
    perf.add_argument(
        "--repeat", type=int, default=1,
        help="best-of-N wall time per scenario (damps scheduler noise)",
    )
    perf.add_argument(
        "--fleet", action="store_true",
        help="also run the 72-node / 100k-keys-per-cycle fleet smoke",
    )
    perf.add_argument(
        "--fleet-groups", type=int, default=None,
        help="override the fleet smoke's groups per data center",
    )
    perf.add_argument(
        "--fleet-nodes", type=int, default=None,
        help="override the fleet smoke's nodes per group",
    )
    perf.add_argument(
        "--tracing", action="store_true",
        help="run with tracing enabled instead of the null-tracer path",
    )
    perf.add_argument(
        "--label", default=None,
        help="entry label recorded with --out (e.g. post-refactor)",
    )
    perf.add_argument(
        "--out", default=None,
        help="append this run as an entry to the given BENCH_kernel.json",
    )
    perf.add_argument(
        "--check", default=None,
        help="compare events/sec against the last entry of this baseline "
        "file; exit 1 on regression",
    )
    perf.add_argument(
        "--min-ratio", type=float, default=0.8,
        help="regression gate: fail below this fraction of baseline "
        "events/sec (default 0.8 = fail on >20%% regression)",
    )
    perf.add_argument(
        "--baseline-label", default=None,
        help="gate against the last --check entry with this label "
        "instead of the file's last entry (CI uses the pre-refactor "
        "entry: absolute events/sec varies across runner hardware, so "
        "gating against a fast machine's best-of-8 would flake)",
    )

    bandwidth = commands.add_parser(
        "bandwidth",
        help="wire-encoding bench: bytes on the wire across dedup x "
        "encoding arms, plus tiered-audit hashing economics",
    )
    bandwidth.add_argument(
        "--days", type=int, default=4,
        help="changed-value-heavy cycles after the bootstrap",
    )
    bandwidth.add_argument(
        "--label", default=None,
        help="entry label recorded with --out (e.g. post-encoding)",
    )
    bandwidth.add_argument(
        "--out", default=None,
        help="append this run as an entry to the given BENCH_bandwidth.json",
    )
    bandwidth.add_argument(
        "--check", default=None,
        help="gate against the last entry of this baseline file; "
        "exit 1 on regression",
    )
    bandwidth.add_argument(
        "--min-ratio", type=float, default=0.8,
        help="regression gate: fail below this fraction of the baseline "
        "wire_reduction_ratio / audit hash_ratio",
    )
    bandwidth.add_argument(
        "--baseline-label", default=None,
        help="gate against the last --check entry with this label",
    )

    serve = commands.add_parser(
        "serve",
        help="query-serving workload: batched reads, admission control, SLO",
    )
    serve.add_argument(
        "--days", type=int, default=2,
        help="update cycles driven concurrently with serving",
    )
    serve.add_argument("--qps-per-node", type=float, default=60.0)
    serve.add_argument(
        "--duration", type=float, default=20.0,
        help="minimum serving window in simulated seconds",
    )
    serve.add_argument(
        "--window", type=float, default=0.002,
        help="coalescing window in simulated seconds",
    )
    serve.add_argument("--max-batch", type=int, default=64)
    serve.add_argument(
        "--depth", type=int, default=32,
        help="admitted queue depth per healthy replica before shedding",
    )
    serve.add_argument(
        "--slo", type=float, default=0.050,
        help="p99 latency target for admitted reads (simulated seconds)",
    )
    serve.add_argument(
        "--flash-multiplier", type=float, default=8.0,
        help="flash-crowd rate multiplier; 1 disables the surge",
    )
    serve.add_argument(
        "--updates", choices=("pipelined", "none"), default="pipelined",
        help="drive update cycles concurrent with serving, or serve only",
    )
    serve.add_argument(
        "--plan", default=None,
        help="optional chaos plan injected during the run",
    )
    serve.add_argument("--seed", type=int, default=23)
    serve.add_argument(
        "--label", default=None,
        help="entry label recorded with --out (e.g. post-batching)",
    )
    serve.add_argument(
        "--out", default=None,
        help="append this run as an entry to the given BENCH_serving.json",
    )
    serve.add_argument(
        "--check", default=None,
        help="gate against the last entry of this baseline file; "
        "exit 1 on regression or a failed absolute check",
    )
    serve.add_argument(
        "--min-ratio", type=float, default=0.8,
        help="relative gate: fail below this fraction of baseline "
        "batched keys/device-s",
    )
    serve.add_argument(
        "--baseline-label", default=None,
        help="gate against the last --check entry with this label",
    )

    chaos = commands.add_parser(
        "chaos", help="an update cycle under a fault plan + recovery audit"
    )
    chaos.add_argument(
        "--plan", default="single-node-crash",
        help="a named plan (none, single-node-crash, group-outage, "
        "relay-partition, region-isolation, corruption-burst) or raw "
        "plan text",
    )
    chaos.add_argument(
        "--cycles", type=int, default=2,
        help="total update cycles (the first is the fault-free bootstrap)",
    )
    chaos.add_argument(
        "--telemetry", action=argparse.BooleanOptionalAction, default=True,
        help="arm the telemetry plane (recorder + alerting + detection "
        "join); --no-telemetry runs the bare equivalence-pinned harness",
    )
    chaos.add_argument(
        "--integrity", action=argparse.BooleanOptionalAction, default=True,
        help="run a tiered integrity audit after the faults drain; "
        "--no-integrity skips it",
    )
    chaos.add_argument(
        "--wire", action="store_true",
        help="wire-encode slices (delta + DEFLATE) and report the "
        "wire-vs-payload byte accounting",
    )

    health = commands.add_parser(
        "health",
        help="fleet-health telemetry: alerts, MTTD/MTTR, per-stage profile",
    )
    health.add_argument(
        "--plan", default="single-node-crash",
        help="fault scenario, as in `repro chaos --plan`",
    )
    health.add_argument("--cycles", type=int, default=3)
    health.add_argument(
        "--interval", type=float, default=0.25,
        help="telemetry sampling interval (simulated seconds); bounds "
        "detection latency",
    )
    health.add_argument(
        "--fast-window", type=float, default=1.0,
        help="fast burn-rate alert window (simulated seconds)",
    )
    health.add_argument(
        "--slow-window", type=float, default=5.0,
        help="slow burn-rate alert window (simulated seconds)",
    )
    health.add_argument(
        "--watch-interval", type=float, default=2.0,
        help="cadence of the periodic fleet summaries in the report",
    )
    health.add_argument(
        "--top-k", type=int, default=10,
        help="hot operations kept in the per-stage profile",
    )
    health.add_argument(
        "--flamegraph", action="store_true",
        help="include the flamegraph tree in the JSON report (large)",
    )
    health.add_argument(
        "--out", default=None,
        help="also write the full JSON report to this file",
    )
    health.add_argument(
        "--trace-out", default=None,
        help="write the Chrome trace (spans + alert/fault instants) here",
    )

    rebalance = commands.add_parser(
        "rebalance",
        help="a month with a growing fleet: trace-driven autoscaling, a "
        "scripted group split, zero-loss migration audit",
    )
    rebalance.add_argument(
        "--days", type=int, default=10,
        help="scheduled days of the monthly trace (one update cycle each)",
    )
    rebalance.add_argument(
        "--plan", default="none",
        help="fault plan started when the scripted split begins (offsets "
        "relative to the split), or 'none'",
    )
    rebalance.add_argument(
        "--crash", action="store_true",
        help=f"shorthand for --plan {REBALANCE_CRASH_PLAN!r}: crash a "
        "freshly split group's node while it is receiving copies",
    )
    rebalance.add_argument(
        "--split-day", type=int, default=5,
        help="trace day whose cycle is followed by the scripted split",
    )
    rebalance.add_argument(
        "--bandwidth", type=float, default=4_000_000.0,
        help="migration copy budget in bytes per simulated second",
    )
    rebalance.add_argument(
        "--records-per-s", type=float, default=2000.0,
        help="migration copy budget in records per simulated second",
    )
    rebalance.add_argument(
        "--label", default=None,
        help="entry label recorded with --out (e.g. post-elastic)",
    )
    rebalance.add_argument(
        "--out", default=None,
        help="append this run as an entry to the given BENCH_rebalance.json",
    )
    rebalance.add_argument(
        "--check", default=None,
        help="gate against the last entry of this baseline file; "
        "exit 1 on contract breach or regression",
    )
    rebalance.add_argument(
        "--min-ratio", type=float, default=0.8,
        help="regression gate: fail when bytes moved, move duration, or "
        "mid-move read p99 exceed baseline / min-ratio",
    )
    rebalance.add_argument(
        "--baseline-label", default=None,
        help="gate against the last --check entry with this label",
    )

    for sub in (
        demo, fig5, fig9, month, dedup_sweep, report, observe, perf,
        bandwidth, serve, chaos, health, rebalance,
    ):
        sub.add_argument(
            "--json", action="store_true",
            help="emit machine-readable JSON instead of tables",
        )

    args = parser.parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "fig5": _cmd_fig5,
        "fig9": _cmd_fig9,
        "month": _cmd_month,
        "dedup-sweep": _cmd_dedup_sweep,
        "report": _cmd_report,
        "observe": _cmd_observe,
        "perf": _cmd_perf,
        "bandwidth": _cmd_bandwidth,
        "serve": _cmd_serve,
        "chaos": _cmd_chaos,
        "health": _cmd_health,
        "rebalance": _cmd_rebalance,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
