"""Common exception hierarchy for the DirectLoad reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors (``TypeError``, ``KeyError`` from plain dicts, and so on).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class StorageError(ReproError):
    """Base class for storage-engine and device failures."""


class DeviceFullError(StorageError):
    """The simulated SSD has no free space left for the request."""


class OutOfRangeError(StorageError):
    """An address (page, block, or offset) is outside the device geometry."""


class AlignmentError(StorageError):
    """A native-interface request is not block- or page-aligned."""


class CorruptionError(StorageError):
    """Stored bytes fail checksum or framing validation."""


class TruncatedRecordError(CorruptionError):
    """A record's framing runs past the end of the available bytes.

    At the tail of an append-only file this is a *torn write* (a crash
    caught a record half-programmed), which recovery treats as the end
    of the log rather than as corruption.
    """


class KeyNotFoundError(StorageError):
    """The requested key/version does not exist in the store."""


class EngineClosedError(StorageError):
    """An operation was issued against a closed storage engine."""


class TransmissionError(ReproError):
    """Base class for Bifrost delivery failures."""


class ChecksumMismatchError(TransmissionError):
    """A slice arrived with a checksum that does not match its payload."""


class WireCodecError(TransmissionError):
    """A wire-encoded slice payload could not be decoded."""


class WireBaseUnavailableError(WireCodecError):
    """A delta-encoded entry references a predecessor value this
    receiver has not decoded yet.

    Under pipelined delivery a version N+1 slice can overtake the
    version N slice that carries its delta base; the receiving cluster
    parks the slice and retries after the base lands (see
    :meth:`repro.mint.cluster.MintCluster.ingest_slice`).
    """


class RoutingError(TransmissionError):
    """No usable route exists between the requested regions."""


class LinkPartitionedError(TransmissionError):
    """A transfer was attempted over a partitioned (blackholed) link."""


class DeliveryError(TransmissionError):
    """A slice delivery was abandoned after exhausting its retry budget.

    Raised when ``max_retransmits`` retransmissions all arrived corrupted,
    or when rerouting around partitioned links ran out of attempts.  The
    transport accounts the loss (``DeliveryReport.abandoned``, the
    per-link ``delivery_errors`` counter) instead of silently dropping
    the slice.
    """

    def __init__(self, message: str, deliveries_lost: int = 1) -> None:
        super().__init__(message)
        #: fan-out width lost with this copy (a lost P2P seed copy loses
        #: every region's delivery at once)
        self.deliveries_lost = deliveries_lost


class ClusterError(ReproError):
    """Base class for Mint cluster-management failures."""


class ReplicationError(ClusterError):
    """Not enough healthy nodes are available to place all replicas."""


class NodeDownError(ClusterError):
    """The addressed storage node is not serving requests."""


class OverloadError(ClusterError):
    """The serving tier shed the request: admitting it would push a
    replica's queue past its configured depth bound.

    Load shedding is deliberate back-pressure, not a failure of the
    storage below — callers (workload clients) count it and retry or
    drop, and the frontend reports the shed rate alongside the SLO.
    """


class MigrationError(ClusterError):
    """An elastic rebalance could not converge (records unplaceable
    after the configured verify budget, or an operation was started
    while another was still in flight)."""


class ReleaseError(ReproError):
    """A gray-release transition was attempted from an invalid state."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly."""
