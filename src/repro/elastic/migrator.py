"""Throttled background migration executing the planner's move tasks.

The :class:`Migrator` owns the four elastic membership operations — node
join, node leave, group split, group merge — each a simulation process
that runs *concurrently* with serving traffic and update cycles:

1. open the transition (dual-apply writes arm: every write lands on both
   the old and the new placement, so records ingested mid-move need no
   copying at all);
2. plan the diff (:class:`~repro.elastic.planner.RebalancePlanner`);
3. stream the records over, throttled to a configurable bandwidth and
   key-rate budget, reusing
   :meth:`~repro.faults.repair.ReplicaRepairer.copy_record` so
   deduplicated records migrate value-less — a migrated fleet stays
   byte-identical to one provisioned that way from the start;
4. verify every target holds every record (re-copying after crashes —
   a fault mid-rebalance converges instead of losing data), then cut
   over;
5. withdraw the stale copies left on the old placement.

A version dropped while its keys are mid-move is skipped, never
resurrected: every copy re-checks ``cluster.version_keys`` first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.elastic.planner import MoveTask, RebalancePlanner
from repro.errors import (
    ConfigError,
    KeyNotFoundError,
    MigrationError,
    NodeDownError,
)
from repro.faults.repair import RepairResult, ReplicaRepairer
from repro.mint.cluster import MintCluster
from repro.mint.group import NodeGroup


@dataclass(frozen=True)
class MigratorConfig:
    """The movement budget and convergence knobs."""

    #: copy throttle: simulated seconds accrue per byte moved
    bandwidth_bps: float = 8_000_000.0
    #: ops throttle: upper bound on migrated records per second
    max_records_per_s: float = 4000.0
    #: pause between verify rounds while waiting out a crashed target
    verify_interval_s: float = 0.5
    #: verify rounds before the operation is declared stuck
    max_verify_rounds: int = 240
    #: delete stale copies from the old placement after cutover
    withdraw: bool = True

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ConfigError("bandwidth_bps must be positive")
        if self.max_records_per_s <= 0:
            raise ConfigError("max_records_per_s must be positive")
        if self.verify_interval_s <= 0:
            raise ConfigError("verify_interval_s must be positive")
        if self.max_verify_rounds < 1:
            raise ConfigError("max_verify_rounds must be >= 1")


@dataclass
class MigrationStats:
    """What the migrator moved, skipped, and retried."""

    operations: int = 0
    keys_moved: int = 0
    records_copied: int = 0
    #: records already present at the target (dual-applied writes)
    records_skipped: int = 0
    #: retired dedup-chain bases carried along (installed as deleted)
    bases_copied: int = 0
    bytes_moved: int = 0
    withdrawals: int = 0
    #: copy attempts that hit a down target (retried by verify)
    copy_faults: int = 0
    #: records the verify pass had to re-copy
    verify_retries: int = 0
    total_move_s: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "operations": self.operations,
            "keys_moved": self.keys_moved,
            "records_copied": self.records_copied,
            "records_skipped": self.records_skipped,
            "bases_copied": self.bases_copied,
            "bytes_moved": self.bytes_moved,
            "withdrawals": self.withdrawals,
            "copy_faults": self.copy_faults,
            "verify_retries": self.verify_retries,
            "total_move_s": self.total_move_s,
        }


class Migrator:
    """Executes elastic membership operations on a live cluster."""

    def __init__(
        self,
        sim,
        cluster: MintCluster,
        config: Optional[MigratorConfig] = None,
        repairer: Optional[ReplicaRepairer] = None,
        tracer=None,
        track: str = "elastic",
    ) -> None:
        self.sim = sim
        self.cluster = cluster
        self.config = config or MigratorConfig()
        self.repairer = repairer or ReplicaRepairer()
        self.tracer = tracer
        self.track = track
        self.stats = MigrationStats()
        #: copy accounting shared with the repairer's machinery
        self.copy_result = RepairResult()
        #: completed operations: kind, target, timing, volume — the
        #: topology log a baseline replay applies at time zero
        self.log: List[Dict[str, object]] = []
        self._active = 0

    @property
    def idle(self) -> bool:
        return self._active == 0

    # ------------------------------------------------------------------
    # The four membership operations.  Each returns the sim process;
    # drive it with ``sim.run(until=process)`` or let concurrent cycle
    # traffic drive the clock past it.
    # ------------------------------------------------------------------
    def join_node(self, group: NodeGroup):
        """Spawn a node into ``group`` and migrate its share of keys."""
        return self.sim.process(self._join(group))

    def leave_node(self, group: NodeGroup, name: str):
        """Drain ``name`` out of ``group``, then decommission it."""
        return self.sim.process(self._leave(group, name))

    def split_group(self, source: NodeGroup):
        """Stand up a new group and move half of ``source``'s slots."""
        return self.sim.process(self._split(source))

    def merge_group(self, source: NodeGroup, target: NodeGroup):
        """Move all of ``source``'s slots to ``target``; retire it."""
        return self.sim.process(self._merge(source, target))

    # ------------------------------------------------------------------
    def _begin(self, kind: str, target: str) -> Dict[str, object]:
        if self._active:
            raise MigrationError(
                f"cannot start {kind}: another rebalance is in flight"
            )
        self._active += 1
        record: Dict[str, object] = {
            "kind": kind,
            "target": target,
            "started_at_s": self.sim.now,
        }
        self._instant(f"rebalance:{kind}:start", target=target)
        return record

    def _finish(self, record: Dict[str, object]) -> None:
        self._active -= 1
        record["finished_at_s"] = self.sim.now
        record["duration_s"] = (
            record["finished_at_s"] - record["started_at_s"]
        )
        self.stats.operations += 1
        self.stats.total_move_s += record["duration_s"]
        self.log.append(record)
        self._instant(
            f"rebalance:{record['kind']}:done", target=record["target"]
        )

    def _instant(self, name: str, **attrs) -> None:
        instant = getattr(self.tracer, "instant", None)
        if instant is not None:
            instant(name, track=self.track, at=self.sim.now, **attrs)

    # ------------------------------------------------------------------
    def _join(self, group: NodeGroup):
        record = self._begin("join", f"g{group.group_id}")
        group.begin_transition()
        node = self.cluster.spawn_node(group)
        record["node"] = node.name
        yield from self._run_transition(group, record)
        self._finish(record)

    def _leave(self, group: NodeGroup, name: str):
        record = self._begin("leave", f"g{group.group_id}/{name}")
        record["node"] = name
        group.begin_transition()
        group.mark_draining(name)
        yield from self._run_transition(group, record)
        self.cluster.decommission_node(group, name)
        self._finish(record)

    def _split(self, source: NodeGroup):
        record = self._begin("split", f"g{source.group_id}")
        target = self.cluster.add_group()
        # Every other slot moves: the keyspace halves hash-randomly, so
        # both groups keep a statistically even share (Feldman et al.'s
        # random-partitioning argument).
        slots = self.cluster.slots_of(source)[1::2]
        record["new_group"] = target.group_id
        record["slots"] = list(slots)
        yield from self._run_slot_moves(slots, source, target, record)
        self._finish(record)

    def _merge(self, source: NodeGroup, target: NodeGroup):
        record = self._begin(
            "merge", f"g{source.group_id}->g{target.group_id}"
        )
        slots = self.cluster.slots_of(source)
        record["slots"] = list(slots)
        yield from self._run_slot_moves(slots, source, target, record)
        self.cluster.remove_group(source)
        self._finish(record)

    # ------------------------------------------------------------------
    def _run_transition(
        self, group: NodeGroup, record: Dict[str, object]
    ) -> object:
        tasks = RebalancePlanner(self.cluster).plan_group_transition(group)
        record["keys_planned"] = len(tasks)
        yield from self._move(tasks, progress=group)
        group.complete_transition()
        self._instant("rebalance:cutover", target=record["target"])
        if self.config.withdraw:
            yield from self._withdraw(tasks)

    def _run_slot_moves(
        self,
        slots,
        source: NodeGroup,
        target: NodeGroup,
        record: Dict[str, object],
    ) -> object:
        for slot in slots:
            self.cluster.begin_slot_move(slot, target)
        tasks = RebalancePlanner(self.cluster).plan_slot_moves(
            {slot: (source, target) for slot in slots}
        )
        record["keys_planned"] = len(tasks)
        yield from self._move(tasks, progress=target)
        for slot in slots:
            self.cluster.complete_slot_move(slot)
        self._instant("rebalance:cutover", target=record["target"])
        if self.config.withdraw:
            yield from self._withdraw(tasks)

    # ------------------------------------------------------------------
    def _move(self, tasks: List[MoveTask], progress: NodeGroup) -> object:
        """Copy every task's records, then verify until convergent.

        ``progress`` carries the ``moving_keys`` gauge (the receiving
        group for slot moves, the transitioning group otherwise).
        """
        progress.moving_keys = len(tasks)
        try:
            remaining = len(tasks)
            for task in tasks:
                yield from self._copy_task(task)
                remaining -= 1
                progress.moving_keys = remaining
            yield from self._verify(tasks, progress)
        finally:
            progress.moving_keys = 0

    def _copy_one(self, task: MoveTask, version: int, target) -> int:
        """Copy one record; returns bytes moved (0 = already present)."""
        before = self.copy_result.bytes_copied
        if not self.repairer.copy_record(
            task.source_group, target, task.key, version, self.copy_result
        ):
            return 0
        moved = self.copy_result.bytes_copied - before
        if moved:
            self.stats.records_copied += 1
            self.stats.bytes_moved += moved
        else:
            self.stats.records_skipped += 1
        return moved

    def _copy_task(self, task: MoveTask) -> object:
        config = self.config
        for version in task.versions:
            # Dropped mid-move: never resurrect a retired version.
            if version not in self.cluster.version_keys:
                continue
            for target in task.copy_targets:
                try:
                    moved = self._copy_one(task, version, target)
                except NodeDownError:
                    # Target crashed under the copy: note the miss so
                    # both node repair and the verify pass converge.
                    task.target_group.note_missed(
                        target.name, "put", task.key, version
                    )
                    self.stats.copy_faults += 1
                    continue
                if moved:
                    yield self.sim.timeout(
                        moved / config.bandwidth_bps
                        + 1.0 / config.max_records_per_s
                    )
        yield from self._copy_bases(task)
        self.stats.keys_moved += 1

    # ------------------------------------------------------------------
    # Dedup-chain bases.  A value-less record resolves through older
    # versions of its key — possibly to a *retired* version's record the
    # GC retains only because the chain references it.  Moving the live
    # records alone would leave every migrated chain dangling, so the
    # base travels too, installed exactly as stored: value-bearing and
    # flagged deleted.
    # ------------------------------------------------------------------
    def _base_for(self, task: MoveTask, version: int):
        """The retired chain base ``(key, version)`` resolves to.

        ``None`` when the record carries its own value, its base lives
        in a retained version (the normal copy pass carries it), or no
        up source peer can resolve the chain right now (the verify loop
        retries).  Returns ``(base_version, value, deleted)`` otherwise.
        """
        for peer in task.source_group.nodes:
            if not peer.is_up or not peer.engine.holds(task.key, version):
                continue
            try:
                base = peer.engine.chain_base(task.key, version)
            except KeyNotFoundError:
                continue  # partial copy on this peer; try another
            if base is None or base[0] in self.cluster.version_keys:
                return None
            return base
        return None

    def _install_base(self, task: MoveTask, target, base) -> int:
        """Reproduce a retired base on ``target``; returns bytes moved."""
        base_version, value, deleted = base
        if target.engine.holds(task.key, base_version):
            return 0
        target.put(task.key, base_version, value)
        if deleted:
            target.delete(task.key, base_version)
        self.stats.bases_copied += 1
        moved = len(task.key) + len(value)
        self.stats.bytes_moved += moved
        return moved

    def _copy_bases(self, task: MoveTask) -> object:
        config = self.config
        for version in task.versions:
            if version not in self.cluster.version_keys:
                continue
            base = self._base_for(task, version)
            if base is None:
                continue
            for target in task.copy_targets:
                try:
                    moved = self._install_base(task, target, base)
                except NodeDownError:
                    self.stats.copy_faults += 1
                    continue
                if moved:
                    yield self.sim.timeout(
                        moved / config.bandwidth_bps
                        + 1.0 / config.max_records_per_s
                    )

    def _verify(self, tasks: List[MoveTask], progress: NodeGroup) -> object:
        """Re-copy until every live record sits on every copy target.

        The convergence loop that makes a crash mid-rebalance safe: a
        target that lost its unflushed tail (or was down for the first
        pass) is retried every ``verify_interval_s`` until whole, up to
        ``max_verify_rounds``.
        """
        rounds = 0
        while True:
            missing = []
            for task in tasks:
                for version in task.versions:
                    if version not in self.cluster.version_keys:
                        continue
                    for target in task.copy_targets:
                        if not target.engine.exists(task.key, version):
                            missing.append((task, version, target, None))
                    base = self._base_for(task, version)
                    if base is None:
                        continue
                    for target in task.copy_targets:
                        if not target.engine.holds(task.key, base[0]):
                            missing.append((task, version, target, base))
            if not missing:
                return
            rounds += 1
            if rounds > self.config.max_verify_rounds:
                raise MigrationError(
                    f"rebalance stuck: {len(missing)} records still "
                    f"missing after {rounds} verify rounds"
                )
            self.stats.verify_retries += len(missing)
            progress.moving_keys = len({t.key for t, _v, _n, _b in missing})
            for task, version, target, base in missing:
                if not target.is_up:
                    continue
                try:
                    if base is None:
                        moved = self._copy_one(task, version, target)
                    else:
                        moved = self._install_base(task, target, base)
                except NodeDownError:
                    continue
                if moved:
                    yield self.sim.timeout(
                        moved / self.config.bandwidth_bps
                    )
            yield self.sim.timeout(self.config.verify_interval_s)

    def _withdraw(self, tasks: List[MoveTask]) -> object:
        """Delete the stale copies the cutover left behind.

        A down holder gets the delete queued in its repair backlog (the
        standard missed-op path), so recovery finishes the withdrawal.
        """
        config = self.config
        for task in tasks:
            removed = 0
            for version in task.versions:
                if version not in self.cluster.version_keys:
                    continue
                for node in task.withdraw_targets:
                    if not node.is_up:
                        task.source_group.note_missed(
                            node.name, "delete", task.key, version
                        )
                        continue
                    try:
                        node.delete(task.key, version)
                        self.stats.withdrawals += 1
                        removed += 1
                    except KeyNotFoundError:
                        pass
                    except NodeDownError:
                        task.source_group.note_missed(
                            node.name, "delete", task.key, version
                        )
            if removed:
                yield self.sim.timeout(removed / config.max_records_per_s)


__all__ = ["MigrationStats", "Migrator", "MigratorConfig"]
