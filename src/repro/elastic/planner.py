"""Topology diffing: current vs. target placement into per-key moves.

The planner is the pure half of the elastic subsystem: given a cluster
whose topology is mid-change (a group in transition after a node
join/leave, or slots marked moving toward another group), it diffs the
old and new placements of every live ``(key, version)`` and emits one
:class:`MoveTask` per key that actually changes hands.  Tasks carry
which nodes need a copy and which hold a stale one — executing them
under a bandwidth budget is the :class:`~repro.elastic.migrator.Migrator`'s
job.

Rendezvous hashing keeps plans minimal by construction: a single-node
join or leave disturbs only ~1/n of a group's keys, and a slot move
touches exactly the keys hashing into that slot — never the whole
keyspace (the paper's argument for hash-to-group indirection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ClusterError
from repro.mint.cluster import MintCluster
from repro.mint.group import NodeGroup
from repro.mint.node import StorageNode


@dataclass(frozen=True)
class MoveTask:
    """One key's worth of data movement.

    ``versions`` are every live version referencing the key, ascending —
    the migrator copies them in that order so a dedup chain's base
    record lands before the value-less records that point at it.
    """

    key: bytes
    versions: Tuple[int, ...]
    #: group whose nodes hold the authoritative copies to read from
    source_group: NodeGroup
    #: group owning the copy targets (for missed-write bookkeeping);
    #: equals ``source_group`` for intra-group transitions
    target_group: NodeGroup
    #: nodes that need the records copied onto them
    copy_targets: Tuple[StorageNode, ...]
    #: nodes left holding stale copies once the move cuts over
    withdraw_targets: Tuple[StorageNode, ...]

    @property
    def record_count(self) -> int:
        return len(self.versions) * len(self.copy_targets)


class RebalancePlanner:
    """Diffs placements into the minimal set of per-key move tasks."""

    def __init__(self, cluster: MintCluster) -> None:
        self.cluster = cluster

    # ------------------------------------------------------------------
    def _live_keys(self) -> Dict[bytes, List[int]]:
        """Every live key -> its referencing versions, ascending."""
        keys: Dict[bytes, List[int]] = {}
        for version in sorted(self.cluster.version_keys):
            for key in set(self.cluster.version_keys[version]):
                keys.setdefault(key, []).append(version)
        return keys

    # ------------------------------------------------------------------
    def plan_group_transition(self, group: NodeGroup) -> List[MoveTask]:
        """Moves for an in-transition group (post join/leave/drain).

        Call after :meth:`~repro.mint.group.NodeGroup.begin_transition`
        and the membership change: the plan is the per-key diff between
        the snapshotted old placement and the current one.  Keys whose
        replica set is unchanged produce no task — the ~(n-1)/n majority
        under rendezvous hashing.
        """
        if not group.in_transition:
            raise ClusterError(
                f"group {group.group_id} is not in transition; nothing to plan"
            )
        tasks: List[MoveTask] = []
        for key, versions in self._live_keys().items():
            if self.cluster.group_for(key) is not group:
                continue
            new = group.replicas_for(key)
            old = group.old_replicas_for(key)
            new_names = {node.name for node in new}
            old_names = {node.name for node in old}
            copy = tuple(n for n in new if n.name not in old_names)
            withdraw = tuple(n for n in old if n.name not in new_names)
            if copy or withdraw:
                tasks.append(
                    MoveTask(
                        key=key,
                        versions=tuple(versions),
                        source_group=group,
                        target_group=group,
                        copy_targets=copy,
                        withdraw_targets=withdraw,
                    )
                )
        tasks.sort(key=lambda task: task.key)
        return tasks

    def plan_slot_moves(
        self, moving: Dict[int, Tuple[NodeGroup, NodeGroup]]
    ) -> List[MoveTask]:
        """Moves for slots changing groups (split/merge).

        Every live key hashing into a moving slot copies onto the target
        group's full replica set and withdraws from the source group's —
        the group boundary changes, so the whole replica set moves.
        """
        tasks: List[MoveTask] = []
        for key, versions in self._live_keys().items():
            move = moving.get(self.cluster.slot_for(key))
            if move is None:
                continue
            source, target = move
            tasks.append(
                MoveTask(
                    key=key,
                    versions=tuple(versions),
                    source_group=source,
                    target_group=target,
                    copy_targets=tuple(target.replicas_for(key)),
                    withdraw_targets=tuple(source.replicas_for(key)),
                )
            )
        tasks.sort(key=lambda task: task.key)
        return tasks


__all__ = ["MoveTask", "RebalancePlanner"]
