"""Elastic membership and rebalancing for the Mint fleet.

Cashes in the paper's hash-to-group indirection: node join/leave and
group split/merge on a *live* cluster, with planner-diffed move tasks
(:mod:`~repro.elastic.planner`), throttled dual-apply migration reusing
the repair subsystem's dedup-preserving copy machinery
(:mod:`~repro.elastic.migrator`), and trace-driven autoscaling over the
telemetry plane (:mod:`~repro.elastic.autoscaler`).
"""

from repro.elastic.autoscaler import (
    AutoscalerConfig,
    FleetAutoscaler,
    ScaleDecision,
)
from repro.elastic.migrator import MigrationStats, Migrator, MigratorConfig
from repro.elastic.planner import MoveTask, RebalancePlanner

__all__ = [
    "AutoscalerConfig",
    "FleetAutoscaler",
    "MigrationStats",
    "Migrator",
    "MigratorConfig",
    "MoveTask",
    "RebalancePlanner",
    "ScaleDecision",
]
