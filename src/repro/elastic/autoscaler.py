"""Trace-driven autoscaling policy over the telemetry plane.

The :class:`FleetAutoscaler` subscribes to a
:class:`~repro.obs.timeseries.TimeSeriesRecorder` (the PR 8 telemetry
plane) and watches the trailing rate of one signal — by convention an
ingest-volume counter, so the diurnal monthly trace's load swing is
visible directly.  When the rate crosses the scale-up threshold it emits
an ``up`` decision; below the scale-down threshold, ``down``; a cooldown
suppresses flapping, and (optionally) any active paging alert from a
:class:`~repro.obs.health.HealthEngine` holds scaling entirely — never
rebalance a fleet that is mid-incident.

Decisions are *advisory and deterministic*: the autoscaler mutates
nothing.  The workload drains :meth:`FleetAutoscaler.take_pending`
between update cycles and applies each decision through the
:class:`~repro.elastic.migrator.Migrator` — keeping the applied topology
operations in one replayable log, which is what lets the rebalance
bench replay the same growth against a statically-provisioned baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigError


@dataclass(frozen=True)
class AutoscalerConfig:
    """Thresholds over the watched signal's trailing rate."""

    #: dotted metric name of a cumulative counter to watch
    signal: str = "elastic.load.ingest_bytes"
    #: trailing window the rate is computed over
    window_s: float = 10.0
    #: rate above which the fleet should grow
    scale_up_above: float = 1_000_000.0
    #: rate below which the fleet should shrink (0 disables down-scaling)
    scale_down_below: float = 100_000.0
    #: minimum simulated seconds between decisions
    cooldown_s: float = 30.0
    #: hold all scaling while a paging alert is active
    hold_while_alerting: bool = True

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ConfigError("window_s must be positive")
        if self.cooldown_s < 0:
            raise ConfigError("cooldown_s must be >= 0")
        if self.scale_down_below >= self.scale_up_above:
            raise ConfigError(
                "scale_down_below must be < scale_up_above"
            )


@dataclass(frozen=True)
class ScaleDecision:
    """One emitted decision (advisory; the workload applies it)."""

    at_s: float
    direction: str  # "up" | "down"
    signal_rate: float
    threshold: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "at_s": self.at_s,
            "direction": self.direction,
            "signal_rate": self.signal_rate,
            "threshold": self.threshold,
        }


class FleetAutoscaler:
    """Emits scale decisions from recorder samples."""

    def __init__(
        self,
        recorder,
        config: Optional[AutoscalerConfig] = None,
        engine=None,
    ) -> None:
        self.recorder = recorder
        self.config = config or AutoscalerConfig()
        #: optional :class:`~repro.obs.health.HealthEngine`; active
        #: paging alerts hold scaling when ``hold_while_alerting``
        self.engine = engine
        #: every decision ever emitted, in order
        self.decisions: List[ScaleDecision] = []
        self._pending: List[ScaleDecision] = []
        self._last_decision_at: Optional[float] = None
        #: samples skipped because an alert held scaling
        self.holds = 0
        recorder.subscribe(self.observe)

    # ------------------------------------------------------------------
    def observe(self, at: float, values: Dict[str, float]) -> None:
        """The recorder's sample hook: evaluate the policy once."""
        config = self.config
        rate = self.recorder.window_rate(
            config.signal, config.window_s, at=at
        )
        if rate <= 0:
            return  # no signal yet (run start) — never scale blind
        if (
            self._last_decision_at is not None
            and at - self._last_decision_at < config.cooldown_s
        ):
            return
        if rate > config.scale_up_above:
            direction, threshold = "up", config.scale_up_above
        elif config.scale_down_below > 0 and rate < config.scale_down_below:
            direction, threshold = "down", config.scale_down_below
        else:
            return
        if (
            config.hold_while_alerting
            and self.engine is not None
            and any(
                alert.severity == "page"
                for alert in self.engine.active.values()
            )
        ):
            self.holds += 1
            return
        decision = ScaleDecision(
            at_s=at,
            direction=direction,
            signal_rate=rate,
            threshold=threshold,
        )
        self.decisions.append(decision)
        self._pending.append(decision)
        self._last_decision_at = at

    # ------------------------------------------------------------------
    def take_pending(self) -> List[ScaleDecision]:
        """Drain decisions not yet applied (the workload's poll)."""
        pending, self._pending = self._pending, []
        return pending

    def to_dicts(self) -> List[Dict[str, object]]:
        return [decision.to_dict() for decision in self.decisions]


__all__ = ["AutoscalerConfig", "FleetAutoscaler", "ScaleDecision"]
