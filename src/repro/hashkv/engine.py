"""The hash-indexed engine: an unordered dictionary over AOFs.

Interface-compatible with :class:`~repro.qindb.QinDB` (versioned puts,
value-less deduplicated puts resolved by probing earlier versions,
flag-style deletes) so benches can swap it in; the structural difference
under measurement is the *index*:

* QinDB: a sorted skip list — neighbours are adjacent, so traceback,
  referent checks, and range scans are neighbourhood walks;
* HashKV: a hash table — point lookups are O(1), but version probing
  must guess keys, and a range scan degenerates into a full-table sweep
  plus a sort.

The CPU cost model charges hash operations a per-access cost (the random
memory access of the paper's MegaKV citation) and scans a per-visited-
entry cost, making the asymptotic difference visible in simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import (
    ConfigError,
    EngineClosedError,
    KeyNotFoundError,
    StorageError,
)
from repro.qindb.aof import AofManager, RecordLocation
from repro.qindb.records import Record, RecordType
from repro.ssd.device import SimulatedSSD
from repro.ssd.geometry import SSDGeometry
from repro.ssd.timing import TimingModel


@dataclass(frozen=True)
class HashKVConfig:
    """Tunables for the hash-indexed baseline."""

    segment_bytes: int = 64 * 1024 * 1024
    #: cost of one hash-table access (a random DRAM access + probe chain)
    cpu_per_hash_access_s: float = 400e-9
    cpu_per_op_s: float = 2e-6
    #: cost of visiting one entry during a full-table sweep
    cpu_per_sweep_entry_s: float = 150e-9

    def __post_init__(self) -> None:
        if self.segment_bytes <= 0:
            raise ConfigError("segment_bytes must be positive")
        if min(
            self.cpu_per_hash_access_s,
            self.cpu_per_op_s,
            self.cpu_per_sweep_entry_s,
        ) < 0:
            raise ConfigError("CPU costs must be >= 0")


@dataclass
class _HashEntry:
    location: RecordLocation
    deduplicated: bool
    deleted: bool = False


class HashKV:
    """Append-only log + hash-table index (FlashStore-shaped)."""

    def __init__(
        self, device: SimulatedSSD, config: HashKVConfig | None = None
    ) -> None:
        self.device = device
        self.config = config or HashKVConfig()
        self.aofs = AofManager(device, segment_bytes=self.config.segment_bytes)
        self._table: Dict[Tuple[bytes, int], _HashEntry] = {}
        self.user_bytes_written = 0
        self.user_bytes_read = 0
        self._closed = False

    @classmethod
    def with_capacity(
        cls,
        capacity_bytes: int,
        config: HashKVConfig | None = None,
        timing: TimingModel | None = None,
    ) -> "HashKV":
        geometry = SSDGeometry.from_capacity(capacity_bytes)
        return cls(SimulatedSSD(geometry, timing=timing), config=config)

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise EngineClosedError("engine is closed")

    def _charge(self, hash_accesses: int = 1) -> None:
        self.device.advance(
            self.config.cpu_per_op_s
            + hash_accesses * self.config.cpu_per_hash_access_s
        )

    # ------------------------------------------------------------------
    def put(self, key: bytes, version: int, value: Optional[bytes]) -> None:
        """Append the record and install the hash entry."""
        self._check_open()
        if not isinstance(key, bytes) or not key:
            raise StorageError("key must be non-empty bytes")
        deduplicated = value is None
        if deduplicated:
            record = Record(RecordType.PUT_DEDUP, key, version)
        else:
            record = Record(RecordType.PUT_VALUE, key, version, value)
        location = self.aofs.append(record)
        self._table[(key, version)] = _HashEntry(location, deduplicated)
        self.user_bytes_written += len(key) + (0 if value is None else len(value))
        self._charge()

    def get(self, key: bytes, version: int) -> bytes:
        """Point lookup; dedup resolution probes earlier version keys.

        Without ordering, the only way down a dedup chain is to *guess*
        predecessor versions one hash probe at a time — each probe a
        random memory access.
        """
        self._check_open()
        entry = self._table.get((key, version))
        self._charge()
        if entry is None or entry.deleted:
            raise KeyNotFoundError(f"no live item for {key!r}/{version}")
        probes = 0
        probe_version = version
        current: Optional[_HashEntry] = entry
        # Walk down one version number at a time: the hash index cannot
        # jump to "the next older *existing* version" the way a sorted
        # index can, so holes in the version sequence cost probes too.
        while current is None or current.deduplicated:
            if probe_version == 0:
                raise KeyNotFoundError(
                    f"dedup chain for {key!r}/{version} reaches no stored value"
                )
            probe_version -= 1
            probes += 1
            current = self._table.get((key, probe_version))
        self._charge(hash_accesses=max(1, probes))
        record = self.aofs.read(current.location)
        value = record.value
        self.user_bytes_read += len(key) + len(value)
        return value

    def delete(self, key: bytes, version: int) -> None:
        """Flag the entry deleted (reclamation not modelled here)."""
        self._check_open()
        entry = self._table.get((key, version))
        self._charge()
        if entry is None or entry.deleted:
            raise KeyNotFoundError(f"no live item for {key!r}/{version}")
        entry.deleted = True

    def exists(self, key: bytes, version: int) -> bool:
        self._check_open()
        entry = self._table.get((key, version))
        self._charge()
        return entry is not None and not entry.deleted

    # ------------------------------------------------------------------
    def scan(
        self, start_key: bytes, end_key: bytes
    ) -> Iterator[Tuple[bytes, int, bytes]]:
        """Range scan: a full-table sweep, then sort the survivors.

        This is the operation the hash layout cannot do better than
        O(table size) — the paper's reason for a *sorted* memtable.
        """
        self._check_open()
        self.device.advance(
            len(self._table) * self.config.cpu_per_sweep_entry_s
        )
        survivors: List[Tuple[bytes, int]] = [
            (key, version)
            for (key, version), entry in self._table.items()
            if start_key <= key < end_key and not entry.deleted
        ]
        survivors.sort()
        for key, version in survivors:
            entry = self._table[(key, version)]
            if entry.deduplicated:
                try:
                    yield key, version, self.get(key, version)
                except KeyNotFoundError:
                    continue
            else:
                record = self.aofs.read(entry.location)
                yield key, version, record.value

    # ------------------------------------------------------------------
    @property
    def item_count(self) -> int:
        return len(self._table)

    def flush(self) -> None:
        self.aofs.flush()

    def close(self) -> None:
        if not self._closed:
            self.aofs.flush()
            self._closed = True
