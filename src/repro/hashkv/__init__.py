"""A hash-indexed KV engine — the related-work baseline QinDB rejects.

Paper 2.1: "in a conventional KV-store with a hashing mechanism,
frequent indexing operations can cause a high number of random accesses
in memory, reducing KV throughput", and the related-work survey notes
that the log-plus-hash-table systems (FlashStore, SkimpyStash, SILT,
...) do not support "advanced features like range queries".

:class:`HashKV` is that design, faithfully: the same append-only log on
the native SSD path as QinDB, but indexed by an (unordered) hash table.
Point operations are O(1); a range scan must visit *every* entry and
sort the survivors — cost proportional to the table, not the result.
"""

from repro.hashkv.engine import HashKV, HashKVConfig

__all__ = ["HashKV", "HashKVConfig"]
